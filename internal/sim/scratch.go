package sim

import (
	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// SyncScratch holds the per-run state of RunSync for reuse across runs, so a
// worker executing thousands of trials stops rebuilding the same tables every
// trial. A scratch belongs to one goroutine at a time; runs borrow it for
// their whole duration. The zero value is not ready — use NewSyncScratch.
//
// Reuse is invisible in results: every buffer is either fully overwritten
// before it is read (actions, candidate tables) or re-zeroed on acquisition
// (the per-channel transmitter index), and no scratch state feeds an rng
// draw. The derived network tables (inbound candidates, shared message
// availability sets) are cached keyed by network pointer; a caller that
// mutates a network in place between runs must call Reset (or use a fresh
// scratch) so the tables are rebuilt.
type SyncScratch struct {
	nwKey    *topology.Network
	cands    [][]topology.Candidate
	msgAvail []channel.Set
	masks    *topology.CandidateMasks
	links    []topology.Link

	// Tiled-resolver state (see sync_tiled.go), cached keyed by (network,
	// tiling) pair: the halo-local candidate masks and the per-tile scratch.
	tileNW    *topology.Network
	tileTL    *topology.Tiling
	tileMasks *topology.TileMasks
	tiles     []tileState

	actions   []radio.Action
	txOn      []int
	txTouched []channel.ID
	locals    []int

	// Batched-resolver state (see sync_resolve.go): per-slot transmitter
	// word masks (channel-major, wordsPer words per channel), per-channel
	// listener buckets, the lossy path's overlap buffer, the covered-link
	// dedup bitmap, and the per-run pull/dispatch buffers.
	txWords   []uint64
	avail1    []uint64
	rx        [][]topology.NodeID
	rxTouched []channel.ID
	rxList    []topology.NodeID
	rxChs     []channel.ID
	ovl       []uint64
	covered   []uint64
	hrs       []HeardReporter
	us        []topology.NodeID
	ks        []int
	dec       []radio.Action
}

// syncMaskWordBudget caps the packed candidate-mask table at 8 MB; larger
// networks stay on the scalar resolver (the sharded engine's tiled layout
// is the planned path to large n, not a giant flat table).
const syncMaskWordBudget = 1 << 20

// syncCoveredNodeBudget caps the covered-link dedup bitmap (n² bits) at
// n = 4096 — 2 MB; beyond that deliveries deduplicate in Coverage's map as
// before.
const syncCoveredNodeBudget = 4096

// NewSyncScratch returns an empty scratch ready for use.
func NewSyncScratch() *SyncScratch {
	return &SyncScratch{}
}

// Reset invalidates the network-derived caches. Buffer capacity is kept.
func (sc *SyncScratch) Reset() {
	sc.nwKey = nil
	sc.cands = nil
	sc.msgAvail = nil
	sc.masks = nil
	sc.links = nil
	sc.tileNW = nil
	sc.tileTL = nil
	sc.tileMasks = nil
	sc.tiles = nil
}

// networkTables returns the network-derived tables — the inbound-candidate
// table, the shared message availability sets, the channel-major candidate
// masks (nil when over the word budget; the run falls back to the scalar
// resolver) and the discoverable-link target — rebuilding them only when
// the network changed since the last run. hit reports whether the cached
// tables were reused (the engine-internals scratch hit/miss counter).
func (sc *SyncScratch) networkTables(nw *topology.Network) (_ [][]topology.Candidate, _ []channel.Set, _ *topology.CandidateMasks, _ []topology.Link, hit bool) {
	hit = sc.nwKey == nw
	if !hit {
		sc.nwKey = nw
		sc.cands = nw.InboundCandidates()
		sc.msgAvail = sharedMsgAvail(nw)
		channels := 0
		if id, ok := nw.Universe().Max(); ok {
			channels = int(id) + 1
		}
		sc.masks = topology.NewCandidateMasks(sc.cands, channels, syncMaskWordBudget)
		sc.links = nw.DiscoverableLinks()
	}
	return sc.cands, sc.msgAvail, sc.masks, sc.links, hit
}

// syncTileMaskWordBudget returns the tiled resolver's packed-mask budget:
// the flat-table budget, scaled linearly past it — a listener's halo-local
// row spans at most its 3×3 halo (a constant for radius-matched tilings),
// so the packed table is O(n) by construction and a linear budget admits
// every well-tiled network while still refusing a pathological blowup.
func syncTileMaskWordBudget(n int) int {
	if scaled := 128 * n; scaled > syncMaskWordBudget {
		return scaled
	}
	return syncMaskWordBudget
}

// tileState returns the tiled resolver's halo-local candidate masks and
// per-tile scratch for the (network, tiling) pair, rebuilding on a key
// change and re-zeroing the per-run state either way. A nil mask table
// (halo violation — the tiling is finer than the network's reach — or
// budget overrun, or no channels) disables the tiled path for the run; the
// caller falls back to the single-threaded resolvers.
func (sc *SyncScratch) tileState(nw *topology.Network, tl *topology.Tiling, cands [][]topology.Candidate, channels int) (*topology.TileMasks, []tileState) {
	if sc.tileNW != nw || sc.tileTL != tl {
		sc.tileNW, sc.tileTL = nw, tl
		sc.tileMasks = nil
		sc.tiles = nil
		if channels > 0 {
			sc.tileMasks = topology.NewTileMasks(tl, cands, channels, syncTileMaskWordBudget(tl.N()))
		}
		if sc.tileMasks != nil {
			sc.tiles = buildTileStates(tl, channels)
		}
	}
	if sc.tileMasks == nil {
		return nil, nil
	}
	resetTileStates(sc.tiles)
	return sc.tileMasks, sc.tiles
}

// actionBuf returns the per-node action buffer, grown to n. Entries are
// fully overwritten each slot before being read.
func (sc *SyncScratch) actionBuf(n int) []radio.Action {
	if cap(sc.actions) < n {
		sc.actions = make([]radio.Action, n)
	}
	return sc.actions[:n]
}

// txIndex returns the per-channel transmitter-count index sized for channel
// IDs up to maxID, zeroed: an errored previous run may have returned
// mid-slot with live counts still in place.
func (sc *SyncScratch) txIndex(maxID channel.ID) ([]int, []channel.ID) {
	need := int(maxID) + 1
	if cap(sc.txOn) < need {
		sc.txOn = make([]int, need)
	}
	txOn := sc.txOn[:need]
	for i := range txOn {
		txOn[i] = 0
	}
	if sc.txTouched == nil {
		sc.txTouched = make([]channel.ID, 0, 16)
	}
	return txOn, sc.txTouched[:0]
}

// availBuf returns the per-node single-word availability mask buffer,
// reusing scratch capacity; the caller refills the contents every run.
func (sc *SyncScratch) availBuf(n int) []uint64 {
	if cap(sc.avail1) < n {
		sc.avail1 = make([]uint64, n)
	}
	return sc.avail1[:n]
}

// txWordsBuf returns the per-slot channel-major transmitter masks (channels
// × wordsPer words), zeroed: an errored previous run may have returned
// mid-slot with live bits still set.
func (sc *SyncScratch) txWordsBuf(words int) []uint64 {
	if cap(sc.txWords) < words {
		sc.txWords = make([]uint64, words)
	}
	txw := sc.txWords[:words]
	for i := range txw {
		txw[i] = 0
	}
	return txw
}

// rxListBufs returns the kernel path's flat per-slot listener list and its
// parallel channel list, re-sliced empty, each with capacity for every
// node so per-slot appends never grow them.
func (sc *SyncScratch) rxListBufs(n int) ([]topology.NodeID, []channel.ID) {
	if cap(sc.rxList) < n {
		sc.rxList = make([]topology.NodeID, 0, n)
		sc.rxChs = make([]channel.ID, 0, n)
	}
	return sc.rxList[:0], sc.rxChs[:0]
}

// rxBuckets returns the per-channel listener buckets and their touched
// list, each bucket re-sliced empty: an errored previous run may have
// returned mid-slot with listeners still queued.
func (sc *SyncScratch) rxBuckets(channels int) ([][]topology.NodeID, []channel.ID) {
	if cap(sc.rx) < channels {
		rx := make([][]topology.NodeID, channels)
		copy(rx, sc.rx)
		sc.rx = rx
	}
	sc.rx = sc.rx[:channels]
	for i := range sc.rx {
		sc.rx[i] = sc.rx[i][:0]
	}
	if sc.rxTouched == nil {
		sc.rxTouched = make([]channel.ID, 0, 16)
	}
	return sc.rx, sc.rxTouched[:0]
}

// ovlBuf returns the lossy resolver's overlap buffer with capacity for
// wordsPer words (no row is wider than the full NodeID range, so
// OverlapInto never regrows it mid-run).
func (sc *SyncScratch) ovlBuf(wordsPer int) []uint64 {
	if cap(sc.ovl) < wordsPer {
		sc.ovl = make([]uint64, wordsPer)
	}
	return sc.ovl[:0]
}

// coveredBuf returns the covered-link dedup bitmap (n² bits, bit
// from·n+to), zeroed: every run starts with no link covered.
func (sc *SyncScratch) coveredBuf(n int) []uint64 {
	words := (n*n + 63) / 64
	if cap(sc.covered) < words {
		sc.covered = make([]uint64, words)
	}
	cov := sc.covered[:words]
	for i := range cov {
		cov[i] = 0
	}
	return cov
}

// runBufs returns the per-run dispatch buffers: the heard-reporter cache
// (fully overwritten by the run's setup) and the batched decision-pull
// triple (written before read every slot).
func (sc *SyncScratch) runBufs(n int) ([]HeardReporter, []topology.NodeID, []int, []radio.Action) {
	if cap(sc.hrs) < n {
		sc.hrs = make([]HeardReporter, n)
		sc.us = make([]topology.NodeID, n)
		sc.ks = make([]int, n)
		sc.dec = make([]radio.Action, n)
	}
	return sc.hrs[:n], sc.us[:n], sc.ks[:n], sc.dec[:n]
}

// localSlotBuf returns the per-node local-slot counters of a dynamic run,
// zeroed: a node's decision index is its count of active slots so far, and
// every run starts that count at zero.
func (sc *SyncScratch) localSlotBuf(n int) []int {
	if cap(sc.locals) < n {
		sc.locals = make([]int, n)
	}
	locals := sc.locals[:n]
	for i := range locals {
		locals[i] = 0
	}
	return locals
}

// AsyncScratch holds the per-run state of RunAsync and RunAsyncOnline for
// reuse across runs: the phase-1 frame/start tables, the reception
// resolver's buffers, the delivery list, and (opt-in) the clock timelines.
// A scratch belongs to one goroutine at a time; runs borrow it for their
// whole duration. The zero value is not ready — use NewAsyncScratch.
//
// Reuse is invisible in results: frame tables are fully overwritten (or
// re-sliced empty) before resolution reads them, resolver buffers already
// carried per-frame reuse semantics within a run, and no scratch state feeds
// an rng draw. The derived network tables are cached keyed by network
// pointer; a caller that mutates a network in place between runs must call
// Reset (or use a fresh scratch).
type AsyncScratch struct {
	// RecycleTimelines additionally pools the per-node clock.Timeline
	// objects, resetting them in place each run instead of allocating fresh
	// ones. Timelines escape the engine through AsyncResult.Timelines, so
	// this is safe only when the caller does not use a result's Timelines
	// (FullFrames, MinFullFrames, drift audits) after starting the next run
	// with the same scratch. Paths that audit timelines after a whole batch
	// (e.g. harness.AsyncConfigs consumers) must leave this off.
	RecycleTimelines bool

	nwKey    *topology.Network
	cands    [][]topology.Candidate
	msgAvail []channel.Set

	timelines  []*clock.Timeline
	rateBufs   [][]float64
	frames     [][]asyncFrame
	starts     [][]float64
	deliveries []delivery
	env        asyncEnv

	// Online-engine per-run buffers.
	nextEnd []float64
	pending []int
}

// NewAsyncScratch returns an empty scratch ready for use.
func NewAsyncScratch() *AsyncScratch {
	return &AsyncScratch{}
}

// Reset invalidates the network-derived caches. Buffer capacity is kept.
func (sc *AsyncScratch) Reset() {
	sc.nwKey = nil
	sc.cands = nil
	sc.msgAvail = nil
}

// networkTables mirrors SyncScratch.networkTables.
func (sc *AsyncScratch) networkTables(nw *topology.Network) ([][]topology.Candidate, []channel.Set) {
	if sc.nwKey != nw {
		sc.nwKey = nw
		sc.cands = nw.InboundCandidates()
		sc.msgAvail = sharedMsgAvail(nw)
	}
	return sc.cands, sc.msgAvail
}

// timelineFor returns the timeline for node u initialized with the given
// parameters. With RecycleTimelines it resets a pooled timeline in place;
// otherwise it allocates fresh (the object escapes through the result).
func (sc *AsyncScratch) timelineFor(u int, start, frameLen float64, slotsPerFrame int, drift clock.DriftProcess) (*clock.Timeline, error) {
	if !sc.RecycleTimelines {
		return clock.NewTimeline(start, frameLen, slotsPerFrame, drift)
	}
	for len(sc.timelines) <= u {
		sc.timelines = append(sc.timelines, nil)
	}
	if tl := sc.timelines[u]; tl != nil {
		if err := tl.Reset(start, frameLen, slotsPerFrame, drift); err != nil {
			return nil, err
		}
		return tl, nil
	}
	tl, err := clock.NewTimeline(start, frameLen, slotsPerFrame, drift)
	if err != nil {
		return nil, err
	}
	sc.timelines[u] = tl
	return tl, nil
}

// timelineSlice returns the n-length timeline slice handed to the result.
// With RecycleTimelines the slice itself is pooled too; otherwise it is
// fresh, since AsyncResult.Timelines escapes.
func (sc *AsyncScratch) timelineSlice(n int) []*clock.Timeline {
	if !sc.RecycleTimelines {
		return make([]*clock.Timeline, n)
	}
	for len(sc.timelines) < n {
		sc.timelines = append(sc.timelines, nil)
	}
	return sc.timelines[:n]
}

// frameTables returns the per-node frame and frame-start tables, each inner
// slice re-sliced to length frames (fully overwritten by the pre-generating
// engine) or 0 (appended to by the online engine) with capacity for
// maxFrames entries.
func (sc *AsyncScratch) frameTables(n, maxFrames, frames int) ([][]asyncFrame, [][]float64) {
	if cap(sc.frames) < n {
		fr := make([][]asyncFrame, n)
		copy(fr, sc.frames)
		sc.frames = fr
		st := make([][]float64, n)
		copy(st, sc.starts)
		sc.starts = st
	}
	sc.frames = sc.frames[:n]
	sc.starts = sc.starts[:n]
	for u := 0; u < n; u++ {
		if cap(sc.frames[u]) < maxFrames {
			sc.frames[u] = make([]asyncFrame, maxFrames)
			sc.starts[u] = make([]float64, maxFrames)
		}
		sc.frames[u] = sc.frames[u][:frames]
		sc.starts[u] = sc.starts[u][:frames]
	}
	return sc.frames, sc.starts
}

// envFor primes the embedded resolver env for a run. The env's internal
// buffers (txBuf, sweepBuf, flagBuf, outBuf, seenBuf) persist across runs by
// design: resolveFrame already reuses them frame-to-frame and overwrites
// before reading.
func (sc *AsyncScratch) envFor(nw *topology.Network, cands [][]topology.Candidate, frames [][]asyncFrame, starts [][]float64, timelines []*clock.Timeline, slotsPerFrame int, loss *LossModel) *asyncEnv {
	env := &sc.env
	env.nw = nw
	env.cands = cands
	env.frames = frames
	env.starts = starts
	env.timelines = timelines
	env.slotsPerFrame = slotsPerFrame
	env.loss = loss
	env.world = nil // engines running on a dynamic world set it after
	env.lastCollected = 0
	return env
}

// deliveryBuf returns the empty delivery accumulator.
func (sc *AsyncScratch) deliveryBuf() []delivery {
	return sc.deliveries[:0]
}

// onlineBufs returns the online engine's frame-end / pending-index buffers,
// grown to n. nextEnd is fully initialized by the engine's priming loop;
// pending is zeroed here because the engine relies on all-zero initial
// indexes.
func (sc *AsyncScratch) onlineBufs(n int) ([]float64, []int) {
	if cap(sc.nextEnd) < n {
		sc.nextEnd = make([]float64, n)
		sc.pending = make([]int, n)
	}
	pending := sc.pending[:n]
	for i := range pending {
		pending[i] = 0
	}
	return sc.nextEnd[:n], pending
}

// slotReserver is implemented by drift processes that can pre-size their
// per-slot memo (clock.RandomWalk). Engines that know the frame budget use
// it to avoid append-doubling churn in the rate memo; reserving never
// changes the rates returned.
type slotReserver interface {
	ReserveSlots(n int)
}

func reserveDrift(d clock.DriftProcess, slots int) {
	if r, ok := d.(slotReserver); ok {
		r.ReserveSlots(slots)
	}
}

// rateBufPooler is implemented by drift processes (clock.RandomWalk) whose
// rate-memo backing array can be recycled across trials. Adopting changes
// capacity only, never values; releasing leaves the process unqueryable, so
// the pool operates only under the RecycleTimelines contract (the caller
// never touches a prior run's drifts once the next run starts).
type rateBufPooler interface {
	AdoptRateBuf(buf []float64)
	ReleaseRateBuf() []float64
}

// adoptRateBuf seeds a fresh trial's drift with a pooled backing array.
//
//nd:scratch-owner reclaimRateBufs releases every adopted buffer at run end
func (sc *AsyncScratch) adoptRateBuf(d clock.DriftProcess) {
	p, ok := d.(rateBufPooler)
	if !ok {
		return
	}
	if n := len(sc.rateBufs); n > 0 {
		buf := sc.rateBufs[n-1]
		sc.rateBufs[n-1] = nil
		sc.rateBufs = sc.rateBufs[:n-1]
		p.AdoptRateBuf(buf)
	}
}

// reclaimRateBufs takes every node drift's rate buffer back into the pool
// at the end of a run. A drift shared between nodes releases once (later
// releases return nil); nil or tiny buffers are dropped.
func (sc *AsyncScratch) reclaimRateBufs(nodes []AsyncNode) {
	for i := range nodes {
		p, ok := nodes[i].Drift.(rateBufPooler)
		if !ok {
			continue
		}
		if buf := p.ReleaseRateBuf(); cap(buf) > 0 {
			sc.rateBufs = append(sc.rateBufs, buf)
		}
	}
}
