package sim

import (
	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// SyncScratch holds the per-run state of RunSync for reuse across runs, so a
// worker executing thousands of trials stops rebuilding the same tables every
// trial. A scratch belongs to one goroutine at a time; runs borrow it for
// their whole duration. The zero value is not ready — use NewSyncScratch.
//
// Reuse is invisible in results: every buffer is either fully overwritten
// before it is read (actions, candidate tables) or re-zeroed on acquisition
// (the per-channel transmitter index), and no scratch state feeds an rng
// draw. The derived network tables (inbound candidates, shared message
// availability sets) are cached keyed by network pointer; a caller that
// mutates a network in place between runs must call Reset (or use a fresh
// scratch) so the tables are rebuilt.
type SyncScratch struct {
	nwKey    *topology.Network
	cands    [][]topology.Candidate
	msgAvail []channel.Set

	actions   []radio.Action
	txOn      []int
	txTouched []channel.ID
	locals    []int
}

// NewSyncScratch returns an empty scratch ready for use.
func NewSyncScratch() *SyncScratch {
	return &SyncScratch{}
}

// Reset invalidates the network-derived caches. Buffer capacity is kept.
func (sc *SyncScratch) Reset() {
	sc.nwKey = nil
	sc.cands = nil
	sc.msgAvail = nil
}

// networkTables returns the inbound-candidate table and shared message
// availability sets for nw, rebuilding them only when the network changed
// since the last run.
func (sc *SyncScratch) networkTables(nw *topology.Network) ([][]topology.Candidate, []channel.Set) {
	if sc.nwKey != nw {
		sc.nwKey = nw
		sc.cands = nw.InboundCandidates()
		sc.msgAvail = sharedMsgAvail(nw)
	}
	return sc.cands, sc.msgAvail
}

// actionBuf returns the per-node action buffer, grown to n. Entries are
// fully overwritten each slot before being read.
func (sc *SyncScratch) actionBuf(n int) []radio.Action {
	if cap(sc.actions) < n {
		sc.actions = make([]radio.Action, n)
	}
	return sc.actions[:n]
}

// txIndex returns the per-channel transmitter-count index sized for channel
// IDs up to maxID, zeroed: an errored previous run may have returned
// mid-slot with live counts still in place.
func (sc *SyncScratch) txIndex(maxID channel.ID) ([]int, []channel.ID) {
	need := int(maxID) + 1
	if cap(sc.txOn) < need {
		sc.txOn = make([]int, need)
	}
	txOn := sc.txOn[:need]
	for i := range txOn {
		txOn[i] = 0
	}
	if sc.txTouched == nil {
		sc.txTouched = make([]channel.ID, 0, 16)
	}
	return txOn, sc.txTouched[:0]
}

// localSlotBuf returns the per-node local-slot counters of a dynamic run,
// zeroed: a node's decision index is its count of active slots so far, and
// every run starts that count at zero.
func (sc *SyncScratch) localSlotBuf(n int) []int {
	if cap(sc.locals) < n {
		sc.locals = make([]int, n)
	}
	locals := sc.locals[:n]
	for i := range locals {
		locals[i] = 0
	}
	return locals
}

// AsyncScratch holds the per-run state of RunAsync and RunAsyncOnline for
// reuse across runs: the phase-1 frame/start tables, the reception
// resolver's buffers, the delivery list, and (opt-in) the clock timelines.
// A scratch belongs to one goroutine at a time; runs borrow it for their
// whole duration. The zero value is not ready — use NewAsyncScratch.
//
// Reuse is invisible in results: frame tables are fully overwritten (or
// re-sliced empty) before resolution reads them, resolver buffers already
// carried per-frame reuse semantics within a run, and no scratch state feeds
// an rng draw. The derived network tables are cached keyed by network
// pointer; a caller that mutates a network in place between runs must call
// Reset (or use a fresh scratch).
type AsyncScratch struct {
	// RecycleTimelines additionally pools the per-node clock.Timeline
	// objects, resetting them in place each run instead of allocating fresh
	// ones. Timelines escape the engine through AsyncResult.Timelines, so
	// this is safe only when the caller does not use a result's Timelines
	// (FullFrames, MinFullFrames, drift audits) after starting the next run
	// with the same scratch. Paths that audit timelines after a whole batch
	// (e.g. harness.AsyncConfigs consumers) must leave this off.
	RecycleTimelines bool

	nwKey    *topology.Network
	cands    [][]topology.Candidate
	msgAvail []channel.Set

	timelines  []*clock.Timeline
	rateBufs   [][]float64
	frames     [][]asyncFrame
	starts     [][]float64
	deliveries []delivery
	env        asyncEnv

	// Online-engine per-run buffers.
	nextEnd []float64
	pending []int
}

// NewAsyncScratch returns an empty scratch ready for use.
func NewAsyncScratch() *AsyncScratch {
	return &AsyncScratch{}
}

// Reset invalidates the network-derived caches. Buffer capacity is kept.
func (sc *AsyncScratch) Reset() {
	sc.nwKey = nil
	sc.cands = nil
	sc.msgAvail = nil
}

// networkTables mirrors SyncScratch.networkTables.
func (sc *AsyncScratch) networkTables(nw *topology.Network) ([][]topology.Candidate, []channel.Set) {
	if sc.nwKey != nw {
		sc.nwKey = nw
		sc.cands = nw.InboundCandidates()
		sc.msgAvail = sharedMsgAvail(nw)
	}
	return sc.cands, sc.msgAvail
}

// timelineFor returns the timeline for node u initialized with the given
// parameters. With RecycleTimelines it resets a pooled timeline in place;
// otherwise it allocates fresh (the object escapes through the result).
func (sc *AsyncScratch) timelineFor(u int, start, frameLen float64, slotsPerFrame int, drift clock.DriftProcess) (*clock.Timeline, error) {
	if !sc.RecycleTimelines {
		return clock.NewTimeline(start, frameLen, slotsPerFrame, drift)
	}
	for len(sc.timelines) <= u {
		sc.timelines = append(sc.timelines, nil)
	}
	if tl := sc.timelines[u]; tl != nil {
		if err := tl.Reset(start, frameLen, slotsPerFrame, drift); err != nil {
			return nil, err
		}
		return tl, nil
	}
	tl, err := clock.NewTimeline(start, frameLen, slotsPerFrame, drift)
	if err != nil {
		return nil, err
	}
	sc.timelines[u] = tl
	return tl, nil
}

// timelineSlice returns the n-length timeline slice handed to the result.
// With RecycleTimelines the slice itself is pooled too; otherwise it is
// fresh, since AsyncResult.Timelines escapes.
func (sc *AsyncScratch) timelineSlice(n int) []*clock.Timeline {
	if !sc.RecycleTimelines {
		return make([]*clock.Timeline, n)
	}
	for len(sc.timelines) < n {
		sc.timelines = append(sc.timelines, nil)
	}
	return sc.timelines[:n]
}

// frameTables returns the per-node frame and frame-start tables, each inner
// slice re-sliced to length frames (fully overwritten by the pre-generating
// engine) or 0 (appended to by the online engine) with capacity for
// maxFrames entries.
func (sc *AsyncScratch) frameTables(n, maxFrames, frames int) ([][]asyncFrame, [][]float64) {
	if cap(sc.frames) < n {
		fr := make([][]asyncFrame, n)
		copy(fr, sc.frames)
		sc.frames = fr
		st := make([][]float64, n)
		copy(st, sc.starts)
		sc.starts = st
	}
	sc.frames = sc.frames[:n]
	sc.starts = sc.starts[:n]
	for u := 0; u < n; u++ {
		if cap(sc.frames[u]) < maxFrames {
			sc.frames[u] = make([]asyncFrame, maxFrames)
			sc.starts[u] = make([]float64, maxFrames)
		}
		sc.frames[u] = sc.frames[u][:frames]
		sc.starts[u] = sc.starts[u][:frames]
	}
	return sc.frames, sc.starts
}

// envFor primes the embedded resolver env for a run. The env's internal
// buffers (txBuf, sweepBuf, flagBuf, outBuf, seenBuf) persist across runs by
// design: resolveFrame already reuses them frame-to-frame and overwrites
// before reading.
func (sc *AsyncScratch) envFor(nw *topology.Network, cands [][]topology.Candidate, frames [][]asyncFrame, starts [][]float64, timelines []*clock.Timeline, slotsPerFrame int, loss *LossModel) *asyncEnv {
	env := &sc.env
	env.nw = nw
	env.cands = cands
	env.frames = frames
	env.starts = starts
	env.timelines = timelines
	env.slotsPerFrame = slotsPerFrame
	env.loss = loss
	env.world = nil // engines running on a dynamic world set it after
	env.lastCollected = 0
	return env
}

// deliveryBuf returns the empty delivery accumulator.
func (sc *AsyncScratch) deliveryBuf() []delivery {
	return sc.deliveries[:0]
}

// onlineBufs returns the online engine's frame-end / pending-index buffers,
// grown to n. nextEnd is fully initialized by the engine's priming loop;
// pending is zeroed here because the engine relies on all-zero initial
// indexes.
func (sc *AsyncScratch) onlineBufs(n int) ([]float64, []int) {
	if cap(sc.nextEnd) < n {
		sc.nextEnd = make([]float64, n)
		sc.pending = make([]int, n)
	}
	pending := sc.pending[:n]
	for i := range pending {
		pending[i] = 0
	}
	return sc.nextEnd[:n], pending
}

// slotReserver is implemented by drift processes that can pre-size their
// per-slot memo (clock.RandomWalk). Engines that know the frame budget use
// it to avoid append-doubling churn in the rate memo; reserving never
// changes the rates returned.
type slotReserver interface {
	ReserveSlots(n int)
}

func reserveDrift(d clock.DriftProcess, slots int) {
	if r, ok := d.(slotReserver); ok {
		r.ReserveSlots(slots)
	}
}

// rateBufPooler is implemented by drift processes (clock.RandomWalk) whose
// rate-memo backing array can be recycled across trials. Adopting changes
// capacity only, never values; releasing leaves the process unqueryable, so
// the pool operates only under the RecycleTimelines contract (the caller
// never touches a prior run's drifts once the next run starts).
type rateBufPooler interface {
	AdoptRateBuf(buf []float64)
	ReleaseRateBuf() []float64
}

// adoptRateBuf seeds a fresh trial's drift with a pooled backing array.
//
//nd:scratch-owner reclaimRateBufs releases every adopted buffer at run end
func (sc *AsyncScratch) adoptRateBuf(d clock.DriftProcess) {
	p, ok := d.(rateBufPooler)
	if !ok {
		return
	}
	if n := len(sc.rateBufs); n > 0 {
		buf := sc.rateBufs[n-1]
		sc.rateBufs[n-1] = nil
		sc.rateBufs = sc.rateBufs[:n-1]
		p.AdoptRateBuf(buf)
	}
}

// reclaimRateBufs takes every node drift's rate buffer back into the pool
// at the end of a run. A drift shared between nodes releases once (later
// releases return nil); nil or tiny buffers are dropped.
func (sc *AsyncScratch) reclaimRateBufs(nodes []AsyncNode) {
	for i := range nodes {
		p, ok := nodes[i].Drift.(rateBufPooler)
		if !ok {
			continue
		}
		if buf := p.ReleaseRateBuf(); cap(buf) > 0 {
			sc.rateBufs = append(sc.rateBufs, buf)
		}
	}
}
