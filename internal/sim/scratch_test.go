package sim

// Differential tests for trial-scoped scratch reuse: a scratch carried
// across consecutive runs — different networks, horizons, and seeds — must
// leave every observable output byte-identical to fresh-allocation runs.
// The allocation guards pin the steady state down so a hot-path regression
// (a per-run allocation sneaking back in) fails the suite rather than just
// drifting the benchmarks.

import (
	"fmt"
	"strings"
	"testing"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// scratchTestNetwork builds a small connected CR-ish network.
func scratchTestNetwork(t *testing.T, n int, radius float64, seed uint64) *topology.Network {
	t.Helper()
	r := rng.New(seed)
	nw, err := topology.GeometricConnected(n, radius, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignUniformK(nw, 6, 3, r); err != nil {
		t.Fatal(err)
	}
	return nw
}

// syncFingerprint runs the synchronous engine once and serializes every
// observable output: the full delivery stream, completion state, and the
// coverage curve.
func syncFingerprint(t *testing.T, nw *topology.Network, seed uint64, maxSlots int, scratch *SyncScratch) string {
	t.Helper()
	root := rng.New(seed)
	protos := make([]SyncProtocol, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), 4, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		protos[u] = p
	}
	var sb strings.Builder
	res, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      maxSlots,
		RunToMaxSlots: true,
		Scratch:       scratch,
		Observer: ObserverFunc(func(e Event) {
			if e.Kind == EventDeliver {
				fmt.Fprintf(&sb, "%v %d>%d ch%d\n", e.Time, e.From, e.To, e.Channel)
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "complete=%v slot=%d slots=%d curve=%v\n",
		res.Complete, res.CompletionSlot, res.SlotsSimulated, res.Coverage.Curve())
	return sb.String()
}

// asyncFingerprint does the same for an asynchronous engine (RunAsync or
// RunAsyncOnline). Timelines are deliberately not part of the fingerprint:
// with RecycleTimelines they are pooled and not stable across runs.
func asyncFingerprint(t *testing.T, engine func(AsyncConfig) (*AsyncResult, error), nw *topology.Network, seed uint64, maxFrames int, scratch *AsyncScratch) string {
	t.Helper()
	root := rng.New(seed)
	nodes := benchAsyncNodesT(t, nw, 4, root)
	var sb strings.Builder
	res, err := engine(AsyncConfig{
		Network:   nw,
		Nodes:     nodes,
		FrameLen:  3,
		MaxFrames: maxFrames,
		Scratch:   scratch,
		Observer: ObserverFunc(func(e Event) {
			if e.Kind == EventDeliver {
				fmt.Fprintf(&sb, "%v %d>%d ch%d\n", e.Time, e.From, e.To, e.Channel)
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "complete=%v at=%v ts=%v curve=%v\n",
		res.Complete, res.CompletionTime, res.Ts, res.Coverage.Curve())
	return sb.String()
}

// benchAsyncNodesT mirrors benchAsyncNodes for tests, drawing everything
// from the supplied source so fresh and scratch variants see identical
// protocol streams.
func benchAsyncNodesT(t *testing.T, nw *topology.Network, deltaEst int, root *rng.Source) []AsyncNode {
	t.Helper()
	nodes := make([]AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		w, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.02, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		nodes[u] = AsyncNode{Protocol: p, Start: root.Float64() * 6, Drift: w}
	}
	return nodes
}

// TestRunSyncScratchMatchesFresh interleaves networks of different sizes
// (revisiting the first pointer to hit the network-keyed cache) and checks
// each scratch-reuse run against its fresh-allocation twin.
func TestRunSyncScratchMatchesFresh(t *testing.T) {
	nwA := scratchTestNetwork(t, 12, 0.45, 1)
	nwB := scratchTestNetwork(t, 7, 0.55, 2)
	trials := []struct {
		nw       *topology.Network
		seed     uint64
		maxSlots int
	}{
		{nwA, 100, 400}, {nwB, 101, 250}, {nwA, 102, 400}, {nwB, 103, 100},
	}
	scratch := NewSyncScratch()
	for i, tr := range trials {
		fresh := syncFingerprint(t, tr.nw, tr.seed, tr.maxSlots, nil)
		reused := syncFingerprint(t, tr.nw, tr.seed, tr.maxSlots, scratch)
		if fresh != reused {
			t.Fatalf("trial %d: scratch-reuse run diverged from fresh run\nfresh:\n%s\nreused:\n%s", i, fresh, reused)
		}
	}
}

// TestRunAsyncScratchMatchesFresh covers both asynchronous engines and, for
// RunAsync, both scratch modes (with and without timeline recycling).
func TestRunAsyncScratchMatchesFresh(t *testing.T) {
	nwA := scratchTestNetwork(t, 10, 0.5, 3)
	nwB := scratchTestNetwork(t, 6, 0.6, 4)
	trials := []struct {
		nw        *topology.Network
		seed      uint64
		maxFrames int
	}{
		{nwA, 200, 120}, {nwB, 201, 80}, {nwA, 202, 120}, {nwB, 203, 40},
	}
	engines := []struct {
		name   string
		engine func(AsyncConfig) (*AsyncResult, error)
	}{
		{"RunAsync", RunAsync},
		{"RunAsyncOnline", RunAsyncOnline},
	}
	for _, eng := range engines {
		for _, recycle := range []bool{false, true} {
			if recycle && eng.name == "RunAsyncOnline" {
				continue // recycling is a RunAsync-path option
			}
			scratch := NewAsyncScratch()
			scratch.RecycleTimelines = recycle
			for i, tr := range trials {
				fresh := asyncFingerprint(t, eng.engine, tr.nw, tr.seed, tr.maxFrames, nil)
				reused := asyncFingerprint(t, eng.engine, tr.nw, tr.seed, tr.maxFrames, scratch)
				if fresh != reused {
					t.Fatalf("%s recycle=%v trial %d: scratch-reuse run diverged from fresh run\nfresh:\n%s\nreused:\n%s",
						eng.name, recycle, i, fresh, reused)
				}
			}
		}
	}
}

// TestRunSyncSteadyStateAllocs pins the synchronous engine's steady state:
// with a warm scratch, a run may allocate only its result objects, far
// below the fresh path's per-run tables and buffers.
func TestRunSyncSteadyStateAllocs(t *testing.T) {
	nw := scratchTestNetwork(t, 20, 0.4, 5)
	root := rng.New(9)
	protos := make([]SyncProtocol, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), 4, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		protos[u] = p
	}
	run := func(scratch *SyncScratch) {
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      300,
			RunToMaxSlots: true,
			Scratch:       scratch,
		}); err != nil {
			t.Fatal(err)
		}
	}
	scratch := NewSyncScratch()
	run(scratch) // warm
	steady := testing.AllocsPerRun(5, func() { run(scratch) })
	fresh := testing.AllocsPerRun(5, func() { run(nil) })
	t.Logf("RunSync allocs/run: steady=%.0f fresh=%.0f", steady, fresh)
	// What remains at steady state is the per-run result (coverage record
	// and friends); the engine's own tables and buffers must be gone. The
	// ceiling has headroom over the measured ~220 but fails loudly if a
	// per-slot or per-node allocation sneaks back into the hot path.
	if steady*2 > fresh {
		t.Fatalf("steady-state RunSync allocates %.0f/run, fresh %.0f/run; want at least 2x reduction", steady, fresh)
	}
	if steady > 350 {
		t.Fatalf("steady-state RunSync allocates %.0f/run; ceiling 350", steady)
	}
}

// TestRunAsyncSteadyStateAllocs pins the asynchronous engine's steady state
// under the trial-loop configuration (warm scratch + timeline recycling).
func TestRunAsyncSteadyStateAllocs(t *testing.T) {
	nw := scratchTestNetwork(t, 12, 0.45, 6)
	nodes := benchAsyncNodesT(t, nw, 4, rng.New(10))
	run := func(scratch *AsyncScratch) {
		if _, err := RunAsync(AsyncConfig{
			Network:   nw,
			Nodes:     nodes,
			FrameLen:  3,
			MaxFrames: 150,
			Scratch:   scratch,
		}); err != nil {
			t.Fatal(err)
		}
	}
	scratch := NewAsyncScratch()
	scratch.RecycleTimelines = true
	run(scratch) // warm
	steady := testing.AllocsPerRun(5, func() { run(scratch) })
	fresh := testing.AllocsPerRun(5, func() { run(nil) })
	t.Logf("RunAsync allocs/run: steady=%.0f fresh=%.0f", steady, fresh)
	// Measured ~66 steady vs ~196 fresh: timelines, frame tables, resolver
	// buffers, and delivery queues all reuse; what remains is the per-run
	// result. (The fresh side shrank when InboundCandidates moved to the
	// flat shared-span arena build, so the ratio here matches the sync
	// twin's 2x rather than the original 3x.) The benchmark config (n=30,
	// 800 frames), where timeline slots dominate, shows the full >5x
	// bytes/op reduction.
	if steady*2 > fresh {
		t.Fatalf("steady-state RunAsync allocates %.0f/run, fresh %.0f/run; want at least 2x reduction", steady, fresh)
	}
	if steady > 150 {
		t.Fatalf("steady-state RunAsync allocates %.0f/run; ceiling 150", steady)
	}
}
