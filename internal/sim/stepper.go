package sim

import (
	"fmt"

	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// Stepper is the engines' decision seam: the single source both engines pull
// protocol decisions through. Next returns node u's k-th decision — its k-th
// active slot for the synchronous engine, its k-th local frame for the
// asynchronous engines. Engines call Next with strictly increasing k per
// node (starting at 0, no gaps), never re-query a (u, k) pair, and validate
// every returned action against the node's available set exactly as they
// would a direct protocol call.
//
// The default steppers (built automatically from SyncConfig.Protocols /
// AsyncConfig.Nodes when the Stepper field is nil) pull each decision
// lazily, at the moment the engine first needs it. Because every protocol
// draws only from its own per-node rng.Source, the cross-node interleaving
// of Next calls is invisible in results: a node's decision sequence is a
// function of its private stream alone, so lazy pulling, eager
// pre-generation, and any engine-chosen interleaving produce byte-identical
// runs for the paper's protocols. PregenStepper materializes that claim as
// a differential reference implementation.
//
// Laziness is what makes time-varying runs possible at all: a dynamics-
// driven engine does not know in advance how many decisions a node will
// make (churned nodes are quiet while inactive and consume no decisions),
// so a pre-generated schedule indexed by global slot would desynchronize
// from the node's private stream. The stepper indexes by node-local
// activation count instead, which is well-defined under both static and
// dynamic execution.
type Stepper interface {
	Next(u topology.NodeID, k int) radio.Action
}

// BatchStepper is an optional Stepper extension: the synchronous engine
// batches all of a slot's decision pulls into one NextBatch call instead
// of n Next calls. The seam is sound for the same reason lazy pulling is —
// every protocol draws only from its own per-node rng stream, so whether
// the engine pulls decisions one call at a time or a slot at a time is
// invisible in results (NextBatch must fill dst[i] exactly as Next(us[i],
// ks[i]) would, and both built-in steppers do precisely that). Engines
// fall back to per-node Next calls for steppers without the extension.
type BatchStepper interface {
	Stepper
	// NextBatch fills dst[i] with node us[i]'s ks[i]-th decision for every
	// i. len(us) == len(ks) == len(dst); us is ascending.
	NextBatch(us []topology.NodeID, ks []int, dst []radio.Action)
}

// ConcurrentStepper marks a Stepper whose decision pulls for DIFFERENT
// nodes may be issued concurrently: Next(u, …) and Next(v, …) with u ≠ v
// from different goroutines, with per-node calls still strictly ordered
// (the tiled engine partitions nodes by tile, so one tile's pulls never
// interleave with another's for the same node). Both built-in steppers
// qualify — the package premise is that every protocol draws only from its
// own per-node rng stream — but a custom stepper funneling nodes through
// shared state must not declare the marker, and without it the engine
// stays on the single-threaded paths.
type ConcurrentStepper interface {
	Stepper
	// ConcurrentByNode is a marker; implementations do nothing.
	ConcurrentByNode()
}

// syncStepper is the synchronous engine's default incremental stepper: each
// decision is pulled from the node's protocol when the engine reaches the
// node's k-th active slot.
type syncStepper struct{ protos []SyncProtocol }

// ConcurrentByNode marks the default stepper safe for per-node-disjoint
// concurrent pulls: each decision touches only protos[u]'s private state.
func (s syncStepper) ConcurrentByNode() {}

func (s syncStepper) Next(u topology.NodeID, k int) radio.Action {
	return s.protos[u].Step(k)
}

// NextBatch pulls one slot's decisions in ascending node order — the same
// per-node calls Next would make, amortizing the seam dispatch per slot
// instead of per node.
//
//nd:hotpath
func (s syncStepper) NextBatch(us []topology.NodeID, ks []int, dst []radio.Action) {
	for i, u := range us {
		dst[i] = s.protos[u].Step(ks[i])
	}
}

// asyncStepper is the asynchronous engines' default incremental stepper:
// each decision is pulled from the node's protocol when the engine first
// needs the node's k-th frame.
type asyncStepper struct{ nodes []AsyncNode }

func (s asyncStepper) Next(u topology.NodeID, k int) radio.Action {
	return s.nodes[u].Protocol.NextFrame(k)
}

// PregenStepper is the pre-generating reference implementation of the
// stepper seam: it pulls every node's full decision schedule up front (node-
// major: all of node 0's decisions, then node 1's, …) and replays it on
// demand. This is exactly the decision-generation order the engines used
// before they became incremental, retained so differential tests can pin
// the lazy path to it.
//
// Pre-generation is sound only for oblivious protocols — those whose
// decisions are a function of their private randomness alone, never of
// received messages — because every decision is drawn before any Deliver
// call. The paper's algorithms are oblivious; adaptive wrappers (e.g.
// termination detection) are not and must use the default incremental
// stepper. Decisions are not validated at construction; the engine
// validates each decision it pulls, exactly as with the incremental
// stepper, so a protocol misbehaving beyond the slots a run actually
// executes fails under PregenStepper runs that reach those slots and
// nowhere else.
type PregenStepper struct {
	decisions [][]radio.Action
}

// Next implements Stepper by replaying the pre-generated schedule. It
// panics if k is outside the pre-generated horizon — the differential
// harness always sizes the horizon to the run's budget.
func (p *PregenStepper) Next(u topology.NodeID, k int) radio.Action {
	return p.decisions[u][k]
}

// NextBatch replays one slot's worth of the pre-generated schedule,
// keeping the differential reference valid for the engine's batched pull
// path too.
//
//nd:hotpath
func (p *PregenStepper) NextBatch(us []topology.NodeID, ks []int, dst []radio.Action) {
	for i, u := range us {
		dst[i] = p.decisions[u][ks[i]]
	}
}

// ConcurrentByNode marks the pregen stepper safe for per-node-disjoint
// concurrent pulls: replay reads disjoint rows of an immutable schedule.
func (p *PregenStepper) ConcurrentByNode() {}

// Horizon returns the number of decisions pre-generated per node.
func (p *PregenStepper) Horizon() int {
	if len(p.decisions) == 0 {
		return 0
	}
	return len(p.decisions[0])
}

// NewSyncPregen pre-generates horizon decisions from every synchronous
// protocol, in the node-major order the pre-incremental engine used.
func NewSyncPregen(protos []SyncProtocol, horizon int) (*PregenStepper, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: pregen horizon %d must be positive", horizon)
	}
	decisions := make([][]radio.Action, len(protos))
	for u, p := range protos {
		if p == nil {
			return nil, fmt.Errorf("sim: pregen protocol for node %d is nil", u)
		}
		row := make([]radio.Action, horizon)
		for k := 0; k < horizon; k++ {
			row[k] = p.Step(k)
		}
		decisions[u] = row
	}
	return &PregenStepper{decisions: decisions}, nil
}

// NewAsyncPregen pre-generates horizon frame decisions from every
// asynchronous node's protocol, in the node-major order the
// pre-incremental engine used.
func NewAsyncPregen(nodes []AsyncNode, horizon int) (*PregenStepper, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: pregen horizon %d must be positive", horizon)
	}
	decisions := make([][]radio.Action, len(nodes))
	for u := range nodes {
		p := nodes[u].Protocol
		if p == nil {
			return nil, fmt.Errorf("sim: pregen protocol for node %d is nil", u)
		}
		row := make([]radio.Action, horizon)
		for k := 0; k < horizon; k++ {
			row[k] = p.NextFrame(k)
		}
		decisions[u] = row
	}
	return &PregenStepper{decisions: decisions}, nil
}
