package sim

// Differential testing of the stepper seam: the incremental default path
// (decisions pulled lazily, in whatever order the engine needs them) must
// be byte-identical to PregenStepper (every decision drawn node-major up
// front — the pre-incremental engines' order) for oblivious protocols,
// across both engines, with and without loss models and dynamic worlds.
// Divergence means decision indexing leaked engine scheduling into a
// node's private rng stream.

import (
	"testing"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/dynamics"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// diffNet builds a seeded geometric multi-channel network.
func diffNet(t *testing.T, seed uint64, n int) *topology.Network {
	t.Helper()
	r := rng.New(seed)
	nw, err := topology.GeometricConnected(n, 0.55, r, 100)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	if err := topology.AssignBernoulli(nw, 6, 0.7, r); err != nil {
		t.Fatalf("channels: %v", err)
	}
	return nw
}

// syncProtos builds one seeded set of staged protocols.
func syncProtos(t *testing.T, nw *topology.Network, seed uint64) []SyncProtocol {
	t.Helper()
	root := rng.New(seed)
	protos := make([]SyncProtocol, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewSyncStaged(nw.Avail(topology.NodeID(u)), 8, root.Split())
		if err != nil {
			t.Fatalf("protocol %d: %v", u, err)
		}
		protos[u] = p
	}
	return protos
}

// sameCoverage asserts two coverage records are byte-identical: same
// target, same first-coverage instant per link, same latency profile.
func sameCoverage(t *testing.T, label string, a, b *metrics.Coverage) {
	t.Helper()
	if a.TargetSize() != b.TargetSize() || a.Remaining() != b.Remaining() {
		t.Fatalf("%s: target %d/%d remaining %d/%d", label,
			a.TargetSize(), b.TargetSize(), a.Remaining(), b.Remaining())
	}
	ca, cb := a.Curve(), b.Curve()
	if len(ca) != len(cb) {
		t.Fatalf("%s: curve lengths %d vs %d", label, len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("%s: curve[%d] = %+v vs %+v", label, i, ca[i], cb[i])
		}
	}
	la, lb := a.Latencies(), b.Latencies()
	if len(la) != len(lb) {
		t.Fatalf("%s: latency counts %d vs %d", label, len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("%s: latency[%d] = %v vs %v", label, i, la[i], lb[i])
		}
	}
}

func TestSyncPregenDifferential(t *testing.T) {
	const maxSlots = 4000
	for _, seed := range []uint64{1, 7, 23} {
		nw := diffNet(t, seed, 14)

		lazyCfg := SyncConfig{Network: nw, Protocols: syncProtos(t, nw, seed+100), MaxSlots: maxSlots}
		lazy, err := RunSync(lazyCfg)
		if err != nil {
			t.Fatalf("seed %d lazy: %v", seed, err)
		}

		protos := syncProtos(t, nw, seed+100)
		st, err := NewSyncPregen(protos, maxSlots)
		if err != nil {
			t.Fatalf("seed %d pregen: %v", seed, err)
		}
		pre, err := RunSync(SyncConfig{Network: nw, Protocols: protos, MaxSlots: maxSlots, Stepper: st})
		if err != nil {
			t.Fatalf("seed %d pregen run: %v", seed, err)
		}

		if lazy.Complete != pre.Complete || lazy.CompletionSlot != pre.CompletionSlot {
			t.Fatalf("seed %d: completion %v@%d vs %v@%d", seed,
				lazy.Complete, lazy.CompletionSlot, pre.Complete, pre.CompletionSlot)
		}
		sameCoverage(t, "sync", lazy.Coverage, pre.Coverage)
	}
}

func TestSyncPregenDifferentialWithLoss(t *testing.T) {
	const maxSlots = 6000
	nw := diffNet(t, 5, 12)
	run := func(st func([]SyncProtocol) Stepper) *SyncResult {
		t.Helper()
		protos := syncProtos(t, nw, 42)
		loss, err := NewLossModel(0.3, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		cfg := SyncConfig{Network: nw, Protocols: protos, MaxSlots: maxSlots, Loss: loss}
		if st != nil {
			cfg.Stepper = st(protos)
		}
		res, err := RunSync(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lazy := run(nil)
	pre := run(func(protos []SyncProtocol) Stepper {
		st, err := NewSyncPregen(protos, maxSlots)
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
	// Loss-model erasure draws are consumed in resolution order, which the
	// stepper choice does not alter — lossy runs must match too.
	sameCoverage(t, "sync+loss", lazy.Coverage, pre.Coverage)
}

func TestSyncPregenDifferentialDynamics(t *testing.T) {
	const maxSlots, epochSlots = 6000, 200
	nw := diffNet(t, 3, 14)
	spec := dynamics.Spec{
		EpochLen: epochSlots,
		Churn:    &dynamics.Churn{JoinFraction: 0.4, JoinWindow: 10, LeaveFraction: 0.2, LeaveWindow: 10},
		Primary:  &dynamics.Primary{Events: 2, Duration: 5, Radius: 0.4},
	}
	run := func(pregen bool) *SyncResult {
		t.Helper()
		protos := syncProtos(t, nw, 77)
		world, err := dynamics.NewWorld(nw, spec, maxSlots/epochSlots, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		cfg := SyncConfig{Network: nw, Protocols: protos, MaxSlots: maxSlots, Dynamics: world}
		if pregen {
			// Local activation counts never exceed the slot horizon, so the
			// static horizon bounds the pregen schedule under churn too.
			st, err := NewSyncPregen(protos, maxSlots)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Stepper = st
		}
		res, err := RunSync(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sameCoverage(t, "sync+dynamics", run(false).Coverage, run(true).Coverage)
}

// asyncNodes builds one seeded set of asynchronous nodes with mildly
// drifting clocks and staggered starts.
func asyncNodes(t *testing.T, nw *topology.Network, seed uint64) []AsyncNode {
	t.Helper()
	root := rng.New(seed)
	nodes := make([]AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 8, root.Split())
		if err != nil {
			t.Fatalf("protocol %d: %v", u, err)
		}
		drift, err := clock.NewRandomWalk(0.1, 0.03, root.Split())
		if err != nil {
			t.Fatalf("drift %d: %v", u, err)
		}
		nodes[u] = AsyncNode{Protocol: p, Start: root.Float64() * 10, Drift: drift}
	}
	return nodes
}

func TestAsyncPregenDifferential(t *testing.T) {
	const maxFrames = 400
	for _, seed := range []uint64{2, 9} {
		nw := diffNet(t, seed, 12)
		run := func(engine func(AsyncConfig) (*AsyncResult, error), pregen bool) *AsyncResult {
			t.Helper()
			nodes := asyncNodes(t, nw, seed+500)
			cfg := AsyncConfig{Network: nw, Nodes: nodes, FrameLen: 3, MaxFrames: maxFrames}
			if pregen {
				st, err := NewAsyncPregen(nodes, maxFrames)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Stepper = st
			}
			res, err := engine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		sameCoverage(t, "async batch", run(RunAsync, false).Coverage, run(RunAsync, true).Coverage)
		sameCoverage(t, "async online", run(RunAsyncOnline, false).Coverage, run(RunAsyncOnline, true).Coverage)
	}
}

func TestAsyncPregenDifferentialDynamics(t *testing.T) {
	const maxFrames = 400
	nw := diffNet(t, 4, 12)
	spec := dynamics.Spec{
		EpochLen: 60,
		Churn:    &dynamics.Churn{JoinFraction: 0.3, JoinWindow: 6, LeaveFraction: 0.2, LeaveWindow: 8},
		Primary:  &dynamics.Primary{Events: 2, Duration: 4, Radius: 0.4},
	}
	run := func(engine func(AsyncConfig) (*AsyncResult, error), pregen bool) *AsyncResult {
		t.Helper()
		nodes := asyncNodes(t, nw, 800)
		world, err := dynamics.NewWorld(nw, spec, 25, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		cfg := AsyncConfig{Network: nw, Nodes: nodes, FrameLen: 3, MaxFrames: maxFrames, Dynamics: world}
		if pregen {
			st, err := NewAsyncPregen(nodes, maxFrames)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Stepper = st
		}
		res, err := engine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sameCoverage(t, "async batch+dynamics", run(RunAsync, false).Coverage, run(RunAsync, true).Coverage)
	sameCoverage(t, "async online+dynamics", run(RunAsyncOnline, false).Coverage, run(RunAsyncOnline, true).Coverage)
	// The two async engines deliver in different orders but must agree on
	// what was ever covered for oblivious protocols, dynamics included.
	batch, online := run(RunAsync, false), run(RunAsyncOnline, false)
	sameCoverage(t, "async batch vs online dynamics", batch.Coverage, online.Coverage)
}
