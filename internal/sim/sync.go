// Package sim provides the two simulation engines that execute discovery
// protocols on a network: a synchronous slotted engine and an asynchronous
// real-time engine driven by drifting per-node clocks.
//
// Both engines implement the paper's communication semantics exactly:
//
//   - Half duplex: a node in transmit mode receives nothing.
//   - No collision detection: a listener with two or more of its neighbors
//     transmitting on its channel hears only noise.
//   - Channel-scoped propagation: node v's transmission on channel c reaches
//     node u iff v is a neighbor of u and c ∈ span(u,v). Non-neighbors never
//     interfere (interference range equals communication range).
//
// Engines drive protocols through narrow interfaces (SyncProtocol,
// AsyncProtocol), report results through metrics.Coverage, and expose what
// happened through one typed observability seam: an Observer attached to
// the run configuration receives Event values (see observe.go); the trace,
// metrics and experiment layers plug in through its adapters.
//
// Decision generation is incremental: both engines pull each node's next
// decision through the Stepper seam (see stepper.go) at the moment the
// simulation first needs it, which is what lets time-varying runs (the
// Dynamics config fields) pause churned-out nodes without desynchronizing
// their private rng streams. Because every protocol draws only from its own
// per-node stream, the pull order across nodes is invisible in results;
// PregenStepper — the pre-generation strategy the engines themselves used
// before they became incremental — remains valid for oblivious protocols
// (the paper's algorithms) and is retained as the differential reference
// the tests pin the lazy path against.
package sim

import (
	"fmt"

	"m2hew/internal/channel"
	"m2hew/internal/dynamics"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// HeardReporter is optionally implemented by protocols that piggyback
// their discovered in-neighbor list on outgoing messages (the
// acknowledgment extension for asymmetric graphs, core.Acknowledging).
// Engines query it at delivery time, so the list reflects everything the
// sender had heard before the delivered transmission.
type HeardReporter interface {
	Heard() []topology.NodeID
}

// SyncProtocol is a per-node protocol driven by the synchronous engine.
// Step is called once per slot with the node-local slot index (0 on the
// node's first active slot); Deliver is called for each clear message the
// node receives.
type SyncProtocol interface {
	Step(localSlot int) radio.Action
	Deliver(msg radio.Message)
}

// SyncConfig configures a synchronous run.
type SyncConfig struct {
	// Network is the topology with channel assignment; required.
	Network *topology.Network
	// Protocols holds one protocol per node, indexed by NodeID; required.
	Protocols []SyncProtocol
	// StartSlots optionally delays nodes: node u is quiet before slot
	// StartSlots[u] and calls Step with localSlot = slot − StartSlots[u]
	// afterwards. Nil means all nodes start at slot 0.
	StartSlots []int
	// MaxSlots bounds the simulation; required, > 0.
	MaxSlots int
	// RunToMaxSlots keeps simulating after full coverage (used by
	// experiments that audit steady-state behaviour). Default is to stop at
	// completion.
	RunToMaxSlots bool
	// Loss, if non-nil, erases arriving transmissions per receiver with the
	// model's probability (unreliable channels).
	Loss *LossModel
	// Observer, if non-nil, receives every engine event in simulation
	// order: EventSlot once per slot, then per listener (ascending NodeID)
	// exactly one of EventDeliver, EventCollision or EventIdle. Compose
	// several consumers with MultiObserver.
	Observer Observer
	// Scratch, if non-nil, supplies reusable per-run buffers so repeated
	// runs on one goroutine stop re-allocating them (see SyncScratch for
	// the ownership and network-mutation contract). Nil means the run
	// allocates a private scratch; results are identical either way.
	Scratch *SyncScratch
	// Stepper optionally overrides where decisions come from. Nil — the
	// default — pulls each decision lazily from Protocols; a PregenStepper
	// replays a pre-generated schedule instead (differential reference,
	// sound for oblivious protocols only). Protocols remain required either
	// way: they are the Deliver targets.
	Stepper Stepper
	// Dynamics, if non-nil, runs the simulation on a time-varying world:
	// reception structure, activity and channel availability follow the
	// world's epoch schedule (see internal/dynamics). Nodes inactive in an
	// epoch are quiet without consuming a decision — their local slot
	// counter, and hence their private rng stream, pauses with them.
	// Protocol actions still validate against the static A(u): primary-user
	// blocking shrinks link spans, not the protocol's decision space. The
	// coverage target starts empty and grows with each epoch's link set
	// (births at the epoch's first slot), so Complete is reachable only
	// when links stop appearing; discovery latency comes from
	// Coverage.Latencies. Mutually exclusive with StartSlots — churn
	// schedules subsume staggered starts.
	Dynamics *dynamics.World
}

// SyncResult reports a synchronous run.
type SyncResult struct {
	// Complete is true when every discoverable link was covered.
	Complete bool
	// CompletionSlot is the 0-based global slot during which the last link
	// was covered; valid only when Complete.
	CompletionSlot int
	// SlotsSimulated is the number of slots executed.
	SlotsSimulated int
	// Coverage is the oracle's link coverage record (times are slot
	// indexes).
	Coverage *metrics.Coverage
}

func (c *SyncConfig) validate() error {
	if c.Network == nil {
		return fmt.Errorf("sim: sync config missing network")
	}
	n := c.Network.N()
	if len(c.Protocols) != n {
		return fmt.Errorf("sim: %d protocols for %d nodes", len(c.Protocols), n)
	}
	for u, p := range c.Protocols {
		if p == nil {
			return fmt.Errorf("sim: protocol for node %d is nil", u)
		}
	}
	if c.StartSlots != nil && len(c.StartSlots) != n {
		return fmt.Errorf("sim: %d start slots for %d nodes", len(c.StartSlots), n)
	}
	for u, s := range c.StartSlots {
		if s < 0 {
			return fmt.Errorf("sim: node %d has negative start slot %d", u, s)
		}
	}
	if c.MaxSlots <= 0 {
		return fmt.Errorf("sim: max slots %d must be positive", c.MaxSlots)
	}
	if c.Dynamics != nil {
		if c.StartSlots != nil {
			return fmt.Errorf("sim: dynamics and start slots are mutually exclusive (churn schedules subsume staggered starts)")
		}
		if c.Dynamics.N() != n {
			return fmt.Errorf("sim: dynamics world has %d nodes, network %d", c.Dynamics.N(), n)
		}
		if _, err := c.Dynamics.EpochSlots(); err != nil {
			return err
		}
	}
	return nil
}

// RunSync executes a synchronous simulation. It returns an error for
// configuration mistakes and for protocol actions that violate the radio
// model (e.g. tuning outside the node's available set).
//
//nd:hotpath
func RunSync(cfg SyncConfig) (*SyncResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := cfg.Network
	n := nw.N()
	world := cfg.Dynamics
	var coverage *metrics.Coverage
	epochSlots := 0
	if world != nil {
		epochSlots, _ = world.EpochSlots()  // error ruled out by validate
		coverage = metrics.NewCoverage(nil) // grows at epoch boundaries below
	} else {
		coverage = metrics.NewCoverage(nw.DiscoverableLinks())
	}
	st := cfg.Stepper
	if st == nil {
		st = syncStepper{protos: cfg.Protocols}
	}

	// Reception-resolution state, built (or borrowed from the scratch) once
	// per run and reused across slots:
	//
	//   - cands[u] lists the only transmitters listener u can ever decode
	//     (adjacency, direction and link span resolved up front by the
	//     topology layer), so Phase 2 walks a flat slice instead of
	//     re-querying Neighbors/Reaches/Span per slot;
	//   - txOn[c] counts the transmitters tuned to channel c this slot
	//     (txTouched records which entries to reset), pruning listeners on
	//     silent channels without scanning their candidate lists;
	//   - msgAvail[v] is the one immutable copy of A(v) shared by every
	//     message from v; see radio.Message for the ownership contract.
	sc := cfg.Scratch
	if sc == nil {
		sc = NewSyncScratch()
	}
	cands, msgAvail := sc.networkTables(nw)
	actions := sc.actionBuf(n)
	maxID := channel.ID(-1)
	if id, ok := nw.Universe().Max(); ok {
		maxID = id
	}
	txOn, txTouched := sc.txIndex(maxID)
	//ndlint:ignore hotalloc one result allocation per run, not per slot
	result := &SyncResult{Coverage: coverage}

	// Dynamic-run state: the current epoch snapshot, its candidate table
	// (curCands shadows the static table so Phase 2 reads one variable on
	// both paths), and per-node local-slot counters — a node's decision
	// index is its count of active slots, not the global slot, so a churned
	// node's private rng stream pauses while it is out of the network.
	var cur *dynamics.Epoch
	curCands := cands
	var locals []int
	if world != nil {
		locals = sc.localSlotBuf(n)
	}

	for slot := 0; slot < cfg.MaxSlots; slot++ {
		// Epoch boundary: swap in the new snapshot, announce the boundary
		// and its flips (epoch, joins, leaves, channel losses — each list
		// ascending), and grow the coverage target by the epoch's links
		// (born this slot; links persisting across epochs keep their
		// original birth).
		if world != nil {
			if e := slot / epochSlots; cur == nil || (e != cur.Index && e < world.Horizon()) {
				cur = world.At(e)
				curCands = cur.Cands
				if cfg.Observer != nil {
					cfg.Observer.OnEvent(Event{
						Kind: EventEpoch, Time: float64(slot), Slot: slot, Epoch: cur.Index,
					})
					for _, v := range cur.Joined {
						cfg.Observer.OnEvent(Event{
							Kind: EventJoin, Time: float64(slot), Slot: slot, Node: v, Epoch: cur.Index,
						})
					}
					for _, v := range cur.Left {
						cfg.Observer.OnEvent(Event{
							Kind: EventLeave, Time: float64(slot), Slot: slot, Node: v, Epoch: cur.Index,
						})
					}
					for _, l := range cur.Losses {
						cfg.Observer.OnEvent(Event{
							Kind: EventChannelLoss, Time: float64(slot), Slot: slot,
							Node: l.Node, Channel: l.Channel, Epoch: cur.Index,
						})
					}
				}
				for _, l := range cur.Links {
					coverage.AddTarget(l, float64(slot))
				}
			}
		}

		// Phase 1: collect actions and index transmitters by channel.
		for u := 0; u < n; u++ {
			var local int
			if cur != nil {
				if !cur.Active[u] {
					actions[u] = radio.Action{Mode: radio.Quiet}
					continue
				}
				local = locals[u]
				locals[u]++
			} else {
				start := 0
				if cfg.StartSlots != nil {
					start = cfg.StartSlots[u]
				}
				if slot < start {
					actions[u] = radio.Action{Mode: radio.Quiet}
					continue
				}
				local = slot - start
			}
			a := st.Next(topology.NodeID(u), local)
			if err := a.Validate(nw.Avail(topology.NodeID(u))); err != nil {
				return nil, fmt.Errorf("sim: node %d slot %d: %w", u, slot, err)
			}
			actions[u] = a
			if a.Mode == radio.Transmit {
				if txOn[a.Channel] == 0 {
					txTouched = append(txTouched, a.Channel)
				}
				txOn[a.Channel]++
			}
		}
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(Event{
				Kind: EventSlot, Time: float64(slot), Slot: slot,
				Actions: actions,
			})
		}

		// Phase 2: resolve receptions per listener. The loss-model draw
		// order is part of the reproducibility contract: exactly one draw
		// per candidate that transmits on the listener's channel over an
		// operating link, consumed in ascending candidate order, stopping
		// at the second surviving transmission (resolveSlotNaive in the
		// differential tests re-states this order from first principles).
		for u := 0; u < n; u++ {
			if actions[u].Mode != radio.Receive {
				continue
			}
			c := actions[u].Channel
			if txOn[c] == 0 {
				// Nobody transmits on c: certain silence, no draws.
				if cfg.Observer != nil {
					cfg.Observer.OnEvent(Event{
						Kind: EventIdle, Time: float64(slot), Slot: slot,
						To: topology.NodeID(u), Channel: c,
					})
				}
				continue
			}
			var sender, firstSender topology.NodeID
			senders := 0
			for _, cand := range curCands[u] {
				if actions[cand.From].Mode != radio.Transmit || actions[cand.From].Channel != c {
					continue
				}
				// The link must operate on c (span precomputed per candidate;
				// adjacency and direction already hold for every candidate).
				if !cand.Span.Contains(c) {
					continue
				}
				// Unreliable channels: the transmission may fade at u.
				if cfg.Loss.erased() {
					continue
				}
				if senders == 0 {
					firstSender = cand.From
				}
				senders++
				sender = cand.From
				if senders > 1 {
					break // collision; no need to scan further
				}
			}
			if senders != 1 {
				// Silence or collision: the node hears nothing useful. The
				// collision event reports only the first surviving transmitter
				// — scanning past the second would consume extra loss draws
				// and break the reproducibility contract above.
				if cfg.Observer != nil {
					if senders == 0 {
						cfg.Observer.OnEvent(Event{
							Kind: EventIdle, Time: float64(slot), Slot: slot,
							To: topology.NodeID(u), Channel: c,
						})
					} else {
						cfg.Observer.OnEvent(Event{
							Kind: EventCollision, Time: float64(slot), Slot: slot,
							From: firstSender, To: topology.NodeID(u), Channel: c,
						})
					}
				}
				continue
			}
			msg := radio.Message{From: sender, Avail: msgAvail[sender]}
			if hr, ok := cfg.Protocols[sender].(HeardReporter); ok {
				msg.Heard = copyHeard(hr.Heard())
			}
			cfg.Protocols[u].Deliver(msg)
			coverage.Observe(topology.Link{From: sender, To: topology.NodeID(u)}, float64(slot))
			if cfg.Observer != nil {
				cfg.Observer.OnEvent(Event{
					Kind: EventDeliver, Time: float64(slot), Slot: slot,
					From: sender, To: topology.NodeID(u), Channel: c,
				})
			}
		}

		// Reset the per-slot channel index for the next slot.
		for _, c := range txTouched {
			txOn[c] = 0
		}
		txTouched = txTouched[:0]

		result.SlotsSimulated = slot + 1
		// Early stop requires a quiescent world: a dynamic run may grow new
		// target links at a later epoch, so full coverage now is not final
		// unless no structural change remains.
		if coverage.Complete() && !cfg.RunToMaxSlots && (cur == nil || cur.Quiescent) {
			break
		}
	}
	sc.txTouched = txTouched[:0] // keep any capacity the run grew

	if coverage.Complete() {
		result.Complete = true
		at, _ := coverage.CompletionTime()
		result.CompletionSlot = int(at)
	}
	return result, nil
}
