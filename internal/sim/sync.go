// Package sim provides the two simulation engines that execute discovery
// protocols on a network: a synchronous slotted engine and an asynchronous
// real-time engine driven by drifting per-node clocks.
//
// Both engines implement the paper's communication semantics exactly:
//
//   - Half duplex: a node in transmit mode receives nothing.
//   - No collision detection: a listener with two or more of its neighbors
//     transmitting on its channel hears only noise.
//   - Channel-scoped propagation: node v's transmission on channel c reaches
//     node u iff v is a neighbor of u and c ∈ span(u,v). Non-neighbors never
//     interfere (interference range equals communication range).
//
// Engines drive protocols through narrow interfaces (SyncProtocol,
// AsyncProtocol), report results through metrics.Coverage, and expose what
// happened through one typed observability seam: an Observer attached to
// the run configuration receives Event values (see observe.go); the trace,
// metrics and experiment layers plug in through its adapters.
//
// Decision generation is incremental: both engines pull each node's next
// decision through the Stepper seam (see stepper.go) at the moment the
// simulation first needs it, which is what lets time-varying runs (the
// Dynamics config fields) pause churned-out nodes without desynchronizing
// their private rng streams. Because every protocol draws only from its own
// per-node stream, the pull order across nodes is invisible in results;
// PregenStepper — the pre-generation strategy the engines themselves used
// before they became incremental — remains valid for oblivious protocols
// (the paper's algorithms) and is retained as the differential reference
// the tests pin the lazy path against.
package sim

import (
	"fmt"
	"runtime"

	"m2hew/internal/channel"
	"m2hew/internal/dynamics"
	"m2hew/internal/harness/tilepool"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// HeardReporter is optionally implemented by protocols that piggyback
// their discovered in-neighbor list on outgoing messages (the
// acknowledgment extension for asymmetric graphs, core.Acknowledging).
// Engines query it at delivery time, so the list reflects everything the
// sender had heard before the delivered transmission.
type HeardReporter interface {
	Heard() []topology.NodeID
}

// SyncProtocol is a per-node protocol driven by the synchronous engine.
// Step is called once per slot with the node-local slot index (0 on the
// node's first active slot); Deliver is called for each clear message the
// node receives.
type SyncProtocol interface {
	Step(localSlot int) radio.Action
	Deliver(msg radio.Message)
}

// SyncConfig configures a synchronous run.
type SyncConfig struct {
	// Network is the topology with channel assignment; required.
	Network *topology.Network
	// Protocols holds one protocol per node, indexed by NodeID; required.
	Protocols []SyncProtocol
	// StartSlots optionally delays nodes: node u is quiet before slot
	// StartSlots[u] and calls Step with localSlot = slot − StartSlots[u]
	// afterwards. Nil means all nodes start at slot 0.
	StartSlots []int
	// MaxSlots bounds the simulation; required, > 0.
	MaxSlots int
	// RunToMaxSlots keeps simulating after full coverage (used by
	// experiments that audit steady-state behaviour). Default is to stop at
	// completion.
	RunToMaxSlots bool
	// Loss, if non-nil, erases arriving transmissions per receiver with the
	// model's probability (unreliable channels).
	Loss *LossModel
	// Observer, if non-nil, receives every engine event in simulation
	// order: EventSlot once per slot, then per listener (ascending NodeID)
	// exactly one of EventDeliver, EventCollision or EventIdle. Compose
	// several consumers with MultiObserver.
	Observer Observer
	// Scratch, if non-nil, supplies reusable per-run buffers so repeated
	// runs on one goroutine stop re-allocating them (see SyncScratch for
	// the ownership and network-mutation contract). Nil means the run
	// allocates a private scratch; results are identical either way.
	Scratch *SyncScratch
	// Stepper optionally overrides where decisions come from. Nil — the
	// default — pulls each decision lazily from Protocols; a PregenStepper
	// replays a pre-generated schedule instead (differential reference,
	// sound for oblivious protocols only). Protocols remain required either
	// way: they are the Deliver targets.
	Stepper Stepper
	// Tiling, if non-nil, requests the tiled parallel resolver: per-tile
	// slot resolution on a fork-join worker pool with a deterministic
	// two-phase halo exchange per slot (see sync_tiled.go), byte-identical
	// to the single-threaded engine at matched seed. The tiling must
	// partition this network's nodes with cell side ≥ the connection
	// radius. The tiled path engages only when its preconditions hold —
	// static world, loss-free, no per-listener event subscription, a
	// ConcurrentStepper (the default and pregen steppers qualify), and a
	// halo-clean in-budget mask table; otherwise the run falls back to the
	// single-threaded resolvers, deterministically.
	Tiling *topology.Tiling
	// TileWorkers bounds the tiled resolver's parallelism (caller
	// included). 0 picks GOMAXPROCS; 1 runs the tiled path serially
	// (useful for differential tests). Ignored without Tiling. Worker
	// count never affects results, only wall-clock.
	TileWorkers int
	// Dynamics, if non-nil, runs the simulation on a time-varying world:
	// reception structure, activity and channel availability follow the
	// world's epoch schedule (see internal/dynamics). Nodes inactive in an
	// epoch are quiet without consuming a decision — their local slot
	// counter, and hence their private rng stream, pauses with them.
	// Protocol actions still validate against the static A(u): primary-user
	// blocking shrinks link spans, not the protocol's decision space. The
	// coverage target starts empty and grows with each epoch's link set
	// (births at the epoch's first slot), so Complete is reachable only
	// when links stop appearing; discovery latency comes from
	// Coverage.Latencies. Mutually exclusive with StartSlots — churn
	// schedules subsume staggered starts.
	Dynamics *dynamics.World
}

// SyncResult reports a synchronous run.
type SyncResult struct {
	// Complete is true when every discoverable link was covered.
	Complete bool
	// CompletionSlot is the 0-based global slot during which the last link
	// was covered; valid only when Complete.
	CompletionSlot int
	// SlotsSimulated is the number of slots executed.
	SlotsSimulated int
	// Coverage is the oracle's link coverage record (times are slot
	// indexes).
	Coverage *metrics.Coverage
}

func (c *SyncConfig) validate() error {
	if c.Network == nil {
		return fmt.Errorf("sim: sync config missing network")
	}
	n := c.Network.N()
	if len(c.Protocols) != n {
		return fmt.Errorf("sim: %d protocols for %d nodes", len(c.Protocols), n)
	}
	for u, p := range c.Protocols {
		if p == nil {
			return fmt.Errorf("sim: protocol for node %d is nil", u)
		}
	}
	if c.StartSlots != nil && len(c.StartSlots) != n {
		return fmt.Errorf("sim: %d start slots for %d nodes", len(c.StartSlots), n)
	}
	for u, s := range c.StartSlots {
		if s < 0 {
			return fmt.Errorf("sim: node %d has negative start slot %d", u, s)
		}
	}
	if c.MaxSlots <= 0 {
		return fmt.Errorf("sim: max slots %d must be positive", c.MaxSlots)
	}
	if c.Tiling != nil && c.Tiling.N() != n {
		return fmt.Errorf("sim: tiling partitions %d nodes, network has %d", c.Tiling.N(), n)
	}
	if c.TileWorkers < 0 {
		return fmt.Errorf("sim: tile workers %d must be non-negative", c.TileWorkers)
	}
	if err := c.Loss.validate(); err != nil {
		return err
	}
	if c.Dynamics != nil {
		if c.StartSlots != nil {
			return fmt.Errorf("sim: dynamics and start slots are mutually exclusive (churn schedules subsume staggered starts)")
		}
		if c.Dynamics.N() != n {
			return fmt.Errorf("sim: dynamics world has %d nodes, network %d", c.Dynamics.N(), n)
		}
		if _, err := c.Dynamics.EpochSlots(); err != nil {
			return err
		}
	}
	return nil
}

// RunSync executes a synchronous simulation. It returns an error for
// configuration mistakes and for protocol actions that violate the radio
// model (e.g. tuning outside the node's available set).
//
//nd:hotpath
func RunSync(cfg SyncConfig) (*SyncResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := cfg.Network
	n := nw.N()
	world := cfg.Dynamics
	st := cfg.Stepper
	if st == nil {
		st = syncStepper{protos: cfg.Protocols}
	}

	// Reception-resolution state, built (or borrowed from the scratch) once
	// per run and reused across slots:
	//
	//   - cands[u] lists the only transmitters listener u can ever decode
	//     (adjacency, direction and link span resolved up front by the
	//     topology layer), so the scalar resolver walks a flat slice instead
	//     of re-querying Neighbors/Reaches/Span per slot — and the kernel
	//     resolvers read the same table packed channel-major into word masks
	//     (see syncRun for the per-run path-selection contract);
	//   - txOn[c] counts the transmitters tuned to channel c this slot
	//     (txTouched records which entries to reset), pruning listeners on
	//     silent channels without scanning their candidate lists;
	//   - msgAvail[v] is the one immutable copy of A(v) shared by every
	//     message from v; see radio.Message for the ownership contract.
	sc := cfg.Scratch
	if sc == nil {
		sc = NewSyncScratch()
	}
	cands, msgAvail, masks, links, tablesHit := sc.networkTables(nw)
	var coverage *metrics.Coverage
	epochSlots := 0
	if world != nil {
		epochSlots, _ = world.EpochSlots()  // error ruled out by validate
		coverage = metrics.NewCoverage(nil) // grows at epoch boundaries below
	} else {
		coverage = metrics.NewCoverage(links)
	}
	maxID := channel.ID(-1)
	if id, ok := nw.Universe().Max(); ok {
		maxID = id
	}
	//ndlint:ignore hotalloc one result allocation per run, not per slot
	result := &SyncResult{Coverage: coverage}

	var run syncRun
	run.nw = nw
	run.n = n
	run.protos = cfg.Protocols
	run.obs = cfg.Observer
	run.loss = cfg.Loss
	run.st = st
	run.bst, _ = st.(BatchStepper)
	run.coverage = coverage
	run.curCands = cands    //ndlint:ignore scratchalias syncRun is a run-scoped local; the field dies with the run, before the scratch is recycled
	run.msgAvail = msgAvail // covered by the directive above (own line + next)
	run.masks = masks
	run.actions = sc.actionBuf(n)
	run.txOn, run.txTouched = sc.txIndex(maxID)
	if maxID < 64 {
		// Every channel ID fits one word: flatten each node's availability
		// to a single mask so phase 1 validates with one bit test. The
		// contents are recomputed per run (cheap, O(n)); only the buffer
		// is reused.
		run.avail1 = sc.availBuf(n)
		for u := 0; u < n; u++ {
			run.avail1[u] = 0
			if w := nw.Avail(topology.NodeID(u)).Words(); len(w) > 0 {
				run.avail1[u] = w[0]
			}
		}
	}
	run.lossFree = cfg.Loss == nil || cfg.Loss.Prob <= 0
	run.useKernel = world == nil && masks != nil
	// The observer's subscription (EventMasker; AllEvents when undeclared)
	// gates each emission site, and an observer subscribed to no
	// per-listener kind frees the engine from the per-listener event order
	// entirely — such runs take the batched path exactly like observerless
	// ones (slot and epoch events are unaffected: both paths emit them
	// identically).
	mask := observerMask(cfg.Observer)
	// The internals sink is resolved once; tallying per slot is gated on it
	// so observerless runs pay one dead boolean test. A sink with a zero
	// EventMask leaves every path decision below untouched (see
	// internals.go for the non-perturbation contract).
	sink, _ := cfg.Observer.(InternalsSink)
	run.tallyInternals = sink != nil
	run.wantDeliver = mask.Has(EventDeliver)
	run.wantColl = mask.Has(EventCollision)
	run.wantIdle = mask.Has(EventIdle)
	run.wantSlot = mask.Has(EventSlot)
	perListener := run.wantDeliver || run.wantColl || run.wantIdle
	// The tiled path shares the batched path's preconditions (static,
	// loss-free, no per-listener events) plus a stepper declared safe for
	// per-node-disjoint concurrent pulls, and requires the halo-local mask
	// table to build (nil on halo violation or budget overrun — the
	// deterministic fallback). Worker setup is per-run: the pool's
	// goroutines live exactly as long as the run.
	if cfg.Tiling != nil && world == nil && run.lossFree && !perListener {
		if _, ok := st.(ConcurrentStepper); ok {
			if tm, tiles := sc.tileState(nw, cfg.Tiling, cands, int(maxID)+1); tm != nil {
				workers := cfg.TileWorkers
				if workers == 0 {
					workers = runtime.GOMAXPROCS(0)
				}
				// Workers beyond the tile count would never find work.
				if t := cfg.Tiling.Tiles(); workers > t {
					workers = t
				}
				pool := tilepool.New(workers)
				defer pool.Close()
				//ndlint:ignore hotalloc one tiledRun and two phase closures per run, not per slot
				tr := &tiledRun{
					tl: cfg.Tiling, masks: tm,
					pool:       pool,
					tiles:      tiles, //ndlint:ignore scratchalias tiledRun is run-scoped; the field dies with the run, before the scratch is recycled
					channels:   int(maxID) + 1,
					startSlots: cfg.StartSlots,
				}
				tr.fnA = func(ti int) { run.tileSlotA(ti) } //ndlint:ignore hotalloc per-run closure, not per-slot
				tr.fnB = func(ti int) { run.tileSlotB(ti) }
				run.tiled = tr
			}
		}
	}
	run.batched = run.tiled == nil && run.useKernel && run.lossFree && !perListener
	run.storeActions = run.wantSlot || (run.tiled == nil && !run.useKernel)
	if run.useKernel && run.tiled == nil {
		run.wordsPer = (n + 63) / 64
		run.txWords = sc.txWordsBuf((int(maxID) + 1) * run.wordsPer)
		if !run.lossFree {
			run.ovl = sc.ovlBuf(run.wordsPer)
		}
	}
	if run.batched {
		run.rx, run.rxTouched = sc.rxBuckets(int(maxID) + 1)
	} else if run.useKernel && run.tiled == nil {
		run.rxList, run.rxChs = sc.rxListBufs(n)
	}
	if world == nil && n <= syncCoveredNodeBudget {
		run.covered = sc.coveredBuf(n)
	}
	run.hrs, run.us, run.ks, run.dec = sc.runBufs(n)
	for u := 0; u < n; u++ {
		run.us[u] = topology.NodeID(u) // phase1's static fast path reads us prefilled
	}
	for u, p := range cfg.Protocols {
		hr, _ := p.(HeardReporter)
		run.hrs[u] = hr
	}
	reserveSyncProtocols(cfg.Protocols, n)

	// Dynamic-run state: the current epoch snapshot (its candidate table
	// shadows the static table through run.curCands, so the scalar resolver
	// reads one variable on both paths) and per-node local-slot counters — a
	// node's decision index is its count of active slots, not the global
	// slot, so a churned node's private rng stream pauses while it is out of
	// the network.
	var cur *dynamics.Epoch
	var locals []int
	if world != nil {
		locals = sc.localSlotBuf(n)
	}

	for slot := 0; slot < cfg.MaxSlots; slot++ {
		// Epoch boundary: swap in the new snapshot, announce the boundary
		// and its flips (epoch, joins, leaves, channel losses — each list
		// ascending), and grow the coverage target by the epoch's links
		// (born this slot; links persisting across epochs keep their
		// original birth).
		if world != nil {
			if e := slot / epochSlots; cur == nil || (e != cur.Index && e < world.Horizon()) {
				cur = world.At(e)
				run.curCands = cur.Cands
				if mask.Has(EventEpoch) {
					cfg.Observer.OnEvent(Event{
						Kind: EventEpoch, Time: float64(slot), Slot: slot, Epoch: cur.Index,
					})
				}
				if mask.Has(EventJoin) {
					for _, v := range cur.Joined {
						cfg.Observer.OnEvent(Event{
							Kind: EventJoin, Time: float64(slot), Slot: slot, Node: v, Epoch: cur.Index,
						})
					}
				}
				if mask.Has(EventLeave) {
					for _, v := range cur.Left {
						cfg.Observer.OnEvent(Event{
							Kind: EventLeave, Time: float64(slot), Slot: slot, Node: v, Epoch: cur.Index,
						})
					}
				}
				if mask.Has(EventChannelLoss) {
					for _, l := range cur.Losses {
						cfg.Observer.OnEvent(Event{
							Kind: EventChannelLoss, Time: float64(slot), Slot: slot,
							Node: l.Node, Channel: l.Channel, Epoch: cur.Index,
						})
					}
				}
				for _, l := range cur.Links {
					coverage.AddTarget(l, float64(slot))
				}
			}
		}

		// The tiled path owns its whole slot — decision pulls, EventSlot
		// emission, resolution and delivery all happen inside tiledSlot
		// (two pool fork-joins around a halo barrier), so none of the
		// single-threaded machinery below runs.
		if run.tiled != nil {
			if err := run.tiledSlot(slot); err != nil {
				return nil, err
			}
			result.SlotsSimulated = slot + 1
			if coverage.Complete() && !cfg.RunToMaxSlots {
				break
			}
			continue
		}

		// Phase 1: collect actions — one batched pull through the stepper
		// seam when available — and index transmitters by channel.
		var active []bool
		if cur != nil {
			active = cur.Active
		}
		if err := run.phase1(slot, active, locals, cfg.StartSlots); err != nil {
			return nil, err
		}
		if mask.Has(EventSlot) {
			cfg.Observer.OnEvent(Event{
				Kind: EventSlot, Time: float64(slot), Slot: slot,
				Actions: run.actions,
			})
		}

		// Phase 2: resolve receptions. The loss-model draw order is part of
		// the reproducibility contract: exactly one draw per candidate that
		// transmits on the listener's channel over an operating link,
		// consumed in ascending candidate order, stopping at the second
		// surviving transmission (resolveSlotNaive in the differential tests
		// re-states this order from first principles; every resolver below
		// preserves it — see syncRun for why the batched path may reorder
		// the rest).
		switch {
		case run.batched:
			run.resolveBatched(slot)
		case run.useKernel:
			run.resolveKernel(slot)
		default:
			run.resolveScalar(slot)
		}

		// Reset the per-slot indexes for the next slot.
		run.clearSlot()

		result.SlotsSimulated = slot + 1
		// Early stop requires a quiescent world: a dynamic run may grow new
		// target links at a later epoch, so full coverage now is not final
		// unless no structural change remains.
		if coverage.Complete() && !cfg.RunToMaxSlots && (cur == nil || cur.Quiescent) {
			break
		}
	}
	sc.txTouched = run.txTouched[:0] // keep any capacity the run grew
	if run.rx != nil {
		sc.rxTouched = run.rxTouched[:0]
	}

	if coverage.Complete() {
		result.Complete = true
		at, _ := coverage.CompletionTime()
		result.CompletionSlot = int(at)
	}
	if sink != nil {
		sink.OnInternals(run.finalizeInternals(int64(result.SlotsSimulated), world == nil && masks == nil, tablesHit))
	}
	return result, nil
}

// finalizeInternals completes the run's internals report. Path selection is
// fixed per run, so the per-path slot attribution is free: the whole run's
// slot count lands on whichever resolver actually executed. overBudget is
// the static-run mask-table overrun (dynamic runs take the scalar path by
// design and do not count); tablesHit reports scratch network-table reuse.
func (r *syncRun) finalizeInternals(slots int64, overBudget, tablesHit bool) Internals {
	in := r.internals
	in.SlotsSimulated = slots
	switch {
	case r.tiled != nil:
		in.TiledSlots = slots
		for i := range r.tiled.tiles {
			ts := &r.tiled.tiles[i]
			in.StepperBatches += ts.batches
			in.StepperBatchNodes += ts.batchNodes
			if ts.maxBatch > in.MaxStepperBatch {
				in.MaxStepperBatch = ts.maxBatch
			}
			in.BatchSteps += ts.batchSteps
			in.HaloExchanges += ts.haloEx
			in.HaloWordsCopied += ts.haloWordsCopied
		}
	case r.batched:
		in.BatchedSlots = slots
	case r.useKernel:
		in.KernelSlots = slots
	default:
		in.ScalarSlots = slots
	}
	if overBudget {
		in.MaskBudgetOverruns = 1
	}
	if tablesHit {
		in.ScratchTableHits = 1
	} else {
		in.ScratchTableMisses = 1
	}
	return in
}
