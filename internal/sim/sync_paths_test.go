package sim

// Differential sweep for RunSync's per-run resolver path selection (see
// syncRun in sync_resolve.go). The engine picks among three resolvers —
// batched channel-major, listener-major word kernel, and the scalar
// candidate scan — based on the observer's event subscription, the loss
// model, dynamics, and the mask-table budget. Every path must behave as if
// it executed resolveSlotNaive's listener-major loop; these tests replay
// the same seeded scenarios through each engine configuration that selects
// a different path and pin them all to the naive reference.

import (
	"fmt"
	"strings"
	"testing"

	"m2hew/internal/dynamics"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// naiveDeliveries resolves a whole scripted run through resolveSlotNaive.
func naiveDeliveries(nw *topology.Network, script [][]radio.Action, loss *LossModel) []refDelivery {
	var out []refDelivery
	for slot, actions := range script {
		out = append(out, resolveSlotNaive(nw, slot, actions, loss)...)
	}
	return out
}

// perNode groups a delivery sequence by receiver, preserving order. Within
// one slot each receiver hears at most once, so per-receiver order is
// well-defined regardless of how a resolver interleaves receivers inside a
// slot — which is exactly the freedom the batched path exploits.
func perNode(n int, ds []refDelivery) [][]refDelivery {
	out := make([][]refDelivery, n)
	for _, d := range ds {
		out[d.to] = append(out[d.to], d)
	}
	return out
}

// runScripted executes a scripted run and returns the deliveries each
// protocol actually received (from the protocols' own Deliver records, so
// it works with and without an observer) plus the observer's delivery
// events when obs collected any.
func runScripted(t *testing.T, nw *topology.Network, script [][]radio.Action, cfg SyncConfig) [][]refDelivery {
	t.Helper()
	n := nw.N()
	protos := make([]SyncProtocol, n)
	scripts := make([]*scriptSync, n)
	for u := 0; u < n; u++ {
		actions := make([]radio.Action, len(script))
		for slot := range script {
			actions[slot] = script[slot][u]
		}
		scripts[u] = &scriptSync{actions: actions}
		protos[u] = scripts[u]
	}
	cfg.Network = nw
	cfg.Protocols = protos
	cfg.MaxSlots = len(script)
	cfg.RunToMaxSlots = true
	if _, err := RunSync(cfg); err != nil {
		t.Fatal(err)
	}
	got := make([][]refDelivery, n)
	for u, s := range scripts {
		for _, msg := range s.delivered {
			got[u] = append(got[u], refDelivery{from: msg.From, to: topology.NodeID(u)})
		}
	}
	return got
}

// comparePerNode checks each receiver's delivery sequence (sender order)
// against the reference, ignoring slot stamps when the got side lacks them.
func comparePerNode(t *testing.T, label string, got, want [][]refDelivery) {
	t.Helper()
	for u := range want {
		if len(got[u]) != len(want[u]) {
			t.Fatalf("%s: node %d received %d deliveries, reference %d", label, u, len(got[u]), len(want[u]))
		}
		for i := range want[u] {
			if got[u][i].from != want[u][i].from {
				t.Fatalf("%s: node %d delivery %d from %d, reference from %d",
					label, u, i, got[u][i].from, want[u][i].from)
			}
		}
	}
}

// TestSyncResolverPathsAgree replays seeded random scenarios through every
// engine configuration that selects a different resolver path — batched
// (no observer), batched (observer subscribed to no per-listener kind),
// kernel with a full observer, kernel with a deliveries-only subscription
// — and pins each to resolveSlotNaive. Scenario densities range over 0, 1
// and 2+ transmitters per channel (randomScenario's action mix), with and
// without span restriction and asymmetric links.
func TestSyncResolverPathsAgree(t *testing.T) {
	root := rng.New(20260808)
	for trial := 0; trial < 80; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script := randomScenario(t, r)
			want := perNode(nw.N(), naiveDeliveries(nw, script, nil))

			// Batched path: no observer at all.
			got := runScripted(t, nw, script, SyncConfig{})
			comparePerNode(t, "no-observer", got, want)

			// Batched path with an observer: subscribed only to slot
			// events, so no per-listener event order constrains the engine.
			slots := 0
			got = runScripted(t, nw, script, SyncConfig{
				Observer: OnlyEvents(MaskOf(EventSlot), ObserverFunc(func(e Event) { slots++ })),
			})
			comparePerNode(t, "slot-only observer", got, want)
			if slots != len(script) {
				t.Fatalf("slot-only observer saw %d slot events, want %d", slots, len(script))
			}

			// Kernel path: full observer. The observer's delivery events
			// must also appear in (slot, listener) order.
			var events []refDelivery
			got = runScripted(t, nw, script, SyncConfig{
				Observer: ObserverFunc(func(e Event) {
					if e.Kind == EventDeliver {
						events = append(events, refDelivery{slot: e.Slot, from: e.From, to: e.To})
					}
				}),
			})
			comparePerNode(t, "full observer", got, want)
			flat := naiveDeliveries(nw, script, nil)
			if len(events) != len(flat) {
				t.Fatalf("full observer saw %d delivery events, reference %d", len(events), len(flat))
			}
			for i := range flat {
				if events[i] != flat[i] {
					t.Fatalf("full observer event %d = %+v, reference %+v", i, events[i], flat[i])
				}
			}

			// Kernel path, deliveries-only subscription: masking must not
			// change what is delivered or the order of delivery events.
			events = events[:0]
			got = runScripted(t, nw, script, SyncConfig{
				Observer: OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(e Event) {
					events = append(events, refDelivery{slot: e.Slot, from: e.From, to: e.To})
				})),
			})
			comparePerNode(t, "deliver-only observer", got, want)
			for i := range flat {
				if events[i] != flat[i] {
					t.Fatalf("deliver-only event %d = %+v, reference %+v", i, events[i], flat[i])
				}
			}
		})
	}
}

// TestSyncResolverPathsAgreeLossy pins the lossy kernel path — with full
// and with deliveries-only subscriptions — to the naive reference with an
// identically seeded erasure stream. A resolver that reorders listeners,
// skips a draw, or draws for an event it no longer emits desynchronizes
// the stream and diverges.
func TestSyncResolverPathsAgreeLossy(t *testing.T) {
	root := rng.New(20260809)
	for trial := 0; trial < 60; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script := randomScenario(t, r)
			prob := 0.1 + r.Float64()*0.6
			lossSeed := r.Uint64()

			loss := func() *LossModel {
				m, err := NewLossModel(prob, rng.New(lossSeed))
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			want := perNode(nw.N(), naiveDeliveries(nw, script, loss()))

			got := runScripted(t, nw, script, SyncConfig{Loss: loss()})
			comparePerNode(t, "lossy no-observer", got, want)

			got = runScripted(t, nw, script, SyncConfig{
				Loss:     loss(),
				Observer: OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(Event) {})),
			})
			comparePerNode(t, "lossy deliver-only observer", got, want)
		})
	}
}

// TestSyncStartSlotsMatchNaive pins staggered starts across resolver
// paths: the engine sees per-node local scripts plus StartSlots, the
// reference sees the equivalent flat global script with explicit quiet
// prefixes.
func TestSyncStartSlotsMatchNaive(t *testing.T) {
	root := rng.New(20260810)
	for trial := 0; trial < 40; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script := randomScenario(t, r)
			n := nw.N()
			starts := make([]int, n)
			maxStart := 0
			for u := range starts {
				starts[u] = r.IntN(6)
				if starts[u] > maxStart {
					maxStart = starts[u]
				}
			}
			slots := len(script) + maxStart

			// The reference's global script: node u quiet before starts[u],
			// then its local script; past its script end, repeat the last
			// action (scriptSync's clamping behaviour).
			global := make([][]radio.Action, slots)
			for s := range global {
				global[s] = make([]radio.Action, n)
				for u := 0; u < n; u++ {
					local := s - starts[u]
					switch {
					case local < 0:
						global[s][u] = radio.Action{Mode: radio.Quiet}
					case local < len(script):
						global[s][u] = script[local][u]
					default:
						global[s][u] = script[len(script)-1][u]
					}
				}
			}
			want := perNode(n, naiveDeliveries(nw, global, nil))

			for _, tc := range []struct {
				label string
				cfg   SyncConfig
			}{
				{"no-observer", SyncConfig{StartSlots: starts}},
				{"full observer", SyncConfig{StartSlots: starts, Observer: ObserverFunc(func(Event) {})}},
			} {
				protos := make([]SyncProtocol, n)
				scripts := make([]*scriptSync, n)
				for u := 0; u < n; u++ {
					actions := make([]radio.Action, len(script))
					for s := range script {
						actions[s] = script[s][u]
					}
					scripts[u] = &scriptSync{actions: actions}
					protos[u] = scripts[u]
				}
				tc.cfg.Network = nw
				tc.cfg.Protocols = protos
				tc.cfg.MaxSlots = slots
				tc.cfg.RunToMaxSlots = true
				if _, err := RunSync(tc.cfg); err != nil {
					t.Fatal(err)
				}
				got := make([][]refDelivery, n)
				for u, s := range scripts {
					for _, msg := range s.delivered {
						got[u] = append(got[u], refDelivery{from: msg.From, to: topology.NodeID(u)})
					}
				}
				comparePerNode(t, tc.label, got, want)
			}
		})
	}
}

// TestSyncRejectsLossWithoutRng is the regression test for the
// hand-constructed loss model footgun: &LossModel{Prob: p} with no Rng
// used to nil-panic at the first erasure draw deep inside the slot loop;
// it must surface as a config error before the run starts.
func TestSyncRejectsLossWithoutRng(t *testing.T) {
	nw, err := topology.Clique(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	protos := []SyncProtocol{
		&scriptSync{actions: []radio.Action{{Mode: radio.Transmit, Channel: 0}}},
		&scriptSync{actions: []radio.Action{{Mode: radio.Receive, Channel: 0}}},
	}
	_, err = RunSync(SyncConfig{
		Network:   nw,
		Protocols: protos,
		MaxSlots:  4,
		Loss:      &LossModel{Prob: 0.5},
	})
	if err == nil {
		t.Fatal("RunSync accepted a loss model with no rng")
	}
	if !strings.Contains(err.Error(), "rng") {
		t.Fatalf("error %q does not mention the missing rng", err)
	}
	// Prob 0 without an rng is a valid reliable-channel model and must
	// still be accepted.
	if _, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: protos,
		MaxSlots:  4,
		Loss:      &LossModel{},
	}); err != nil {
		t.Fatalf("RunSync rejected a zero-probability loss model: %v", err)
	}
}

// TestSyncBatchedPathSteadyStateAllocs drives repeated scratch-reusing
// runs down the batched (no-observer) and kernel (masked observer) paths
// and bounds per-run allocations: the resolvers must live entirely off
// scratch buffers, leaving only the fixed per-run setup (result, coverage,
// message sets).
func TestSyncBatchedPathSteadyStateAllocs(t *testing.T) {
	r := rng.New(42)
	nw, err := topology.GeometricConnected(48, 0.3, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignUniformK(nw, 6, 3, r); err != nil {
		t.Fatal(err)
	}
	n := nw.N()
	protos := make([]SyncProtocol, n)
	for u := 0; u < n; u++ {
		avail := nw.Avail(topology.NodeID(u))
		actions := make([]radio.Action, 64)
		for s := range actions {
			c, err := avail.Pick(r)
			if err != nil {
				t.Fatal(err)
			}
			mode := radio.Receive
			if r.Bernoulli(0.4) {
				mode = radio.Transmit
			}
			actions[s] = radio.Action{Mode: mode, Channel: c}
		}
		protos[u] = &sinkSync{act: actions[0]}
	}
	scratch := NewSyncScratch()
	for _, tc := range []struct {
		label string
		obs   Observer
	}{
		{"batched", nil},
		{"kernel-masked", OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(Event) {}))},
	} {
		run := func() {
			if _, err := RunSync(SyncConfig{
				Network:       nw,
				Protocols:     protos,
				MaxSlots:      64,
				RunToMaxSlots: true,
				Scratch:       scratch,
				Observer:      tc.obs,
			}); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the scratch
		if allocs := testing.AllocsPerRun(10, run); allocs > 80 {
			t.Errorf("%s path allocated %.0f objects per scratch-reusing run", tc.label, allocs)
		}
	}
}

// TestSyncDynamicsObserverInvariance covers the dynamics axis of the
// resolver sweep: churn and primary-user epochs force the scalar path, and
// the observer's subscription (full, deliveries-only, slot-only, none)
// changes only which events are constructed — never coverage. A want-gate
// that accidentally guarded a delivery or a loss draw would split these.
func TestSyncDynamicsObserverInvariance(t *testing.T) {
	const maxSlots, epochSlots = 4000, 200
	nw := diffNet(t, 9, 12)
	spec := dynamics.Spec{
		EpochLen: epochSlots,
		Churn:    &dynamics.Churn{JoinFraction: 0.4, JoinWindow: 10, LeaveFraction: 0.2, LeaveWindow: 10},
		Primary:  &dynamics.Primary{Events: 2, Duration: 5, Radius: 0.4},
	}
	run := func(obs Observer, lossy bool) *SyncResult {
		t.Helper()
		world, err := dynamics.NewWorld(nw, spec, maxSlots/epochSlots, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		cfg := SyncConfig{
			Network:   nw,
			Protocols: syncProtos(t, nw, 55),
			MaxSlots:  maxSlots,
			Dynamics:  world,
			Observer:  obs,
		}
		if lossy {
			if cfg.Loss, err = NewLossModel(0.3, rng.New(99)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := RunSync(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, lossy := range []bool{false, true} {
		base := run(nil, lossy)
		sameCoverage(t, "dynamics full observer", base.Coverage,
			run(ObserverFunc(func(Event) {}), lossy).Coverage)
		sameCoverage(t, "dynamics deliver-only", base.Coverage,
			run(OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(Event) {})), lossy).Coverage)
		sameCoverage(t, "dynamics slot-only", base.Coverage,
			run(OnlyEvents(MaskOf(EventSlot), ObserverFunc(func(Event) {})), lossy).Coverage)
	}
}
