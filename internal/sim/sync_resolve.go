package sim

import (
	"fmt"
	"math/bits"

	"m2hew/internal/channel"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// syncRun is RunSync's per-run state: configuration distilled to the hot
// loop's needs, the derived network tables, and the scratch-owned buffers.
// It exists so the slot loop decomposes into //nd:hotpath methods instead
// of one megafunction, and so the three resolution paths share one
// delivery tail.
//
// Path selection, decided once per run:
//
//   - batched (channel-major): static run, no loss, no observer, mask
//     table within budget. Listeners resolve grouped by channel
//     (resolveBatched): only channels that actually carry a transmission
//     are visited, so silent channels and their listeners cost nothing.
//     Reordering listeners is invisible here: with no observer there is
//     no event order to preserve, with no loss there are no shared-rng
//     draws whose order matters, each listener receives at most one
//     delivery per slot on its own state, and a slot's transmitters are
//     never receivers (half duplex), so no HeardReporter's state can
//     change mid-slot.
//   - kernel (listener-major): static run with an observer or a loss
//     model. Listeners resolve in ascending NodeID order — preserving
//     the event contract and the loss-model draw order — each through
//     one word-kernel intersection (candidate-mask row × transmitter
//     mask) instead of a candidate scan; the lossy variant walks the
//     surviving overlap bits in candidate order, drawing exactly as the
//     scalar scan would.
//   - scalar: dynamic worlds (per-epoch candidate tables) and networks
//     whose mask table exceeded its budget keep the candidate-list
//     scan.
type syncRun struct {
	nw       *topology.Network
	n        int
	protos   []SyncProtocol
	obs      Observer
	loss     *LossModel
	st       Stepper
	bst      BatchStepper
	coverage *metrics.Coverage

	curCands [][]topology.Candidate
	msgAvail []channel.Set
	masks    *topology.CandidateMasks

	actions   []radio.Action
	avail1    []uint64
	txOn      []int
	txTouched []channel.ID
	txWords   []uint64
	wordsPer  int
	rx        [][]topology.NodeID
	rxTouched []channel.ID
	rxList    []topology.NodeID
	rxChs     []channel.ID
	ovl       []uint64
	covered   []uint64
	hrs       []HeardReporter
	us        []topology.NodeID
	ks        []int
	dec       []radio.Action

	lossFree  bool
	useKernel bool
	batched   bool
	// tiled, when non-nil, routes every slot through the tiled parallel
	// resolver (sync_tiled.go); batched/useKernel are then irrelevant for
	// path selection but still describe what the fallback would have been.
	tiled *tiledRun

	// Engine-internals tallies (see internals.go): integer arithmetic on
	// run-local fields, gated per slot by tallyInternals so runs without an
	// InternalsSink pay one dead boolean test.
	tallyInternals bool
	internals      Internals

	// Per-kind observation gates: obs != nil AND the observer's
	// subscription (EventMasker; AllEvents when undeclared) includes the
	// kind. Emission sites test one boolean instead of re-deriving the
	// mask per event.
	wantDeliver bool
	wantColl    bool
	wantIdle    bool
	wantSlot    bool
	// storeActions gates the per-decision actions[u] stores: the scalar
	// resolver reads them back and the slot event borrows the slice, but
	// on the kernel and batched paths with EventSlot unsubscribed nothing
	// ever reads them.
	storeActions bool

	// ev is the slot-scoped event template: Time and Slot are set once per
	// slot (phase1), the per-event fields (Kind, From, To, Channel) are
	// overwritten — all four, every emission — at each use. The remaining
	// fields stay zero for these event kinds, so reusing the value emits
	// exactly the events the per-emission literals did.
	ev Event
}

// NeighborReserver is optionally implemented by protocols whose discovery
// state can be pre-sized to the network: the engines call it once per run
// with the node count, replacing per-discovery growth cascades with one
// sized allocation. Implementations must not change results — reserving
// moves allocation timing only (core's NeighborTable.Reserve is the model).
type NeighborReserver interface {
	ReserveNeighbors(n int)
}

// reserveSyncProtocols announces the network size to every protocol that
// can use it.
func reserveSyncProtocols(protos []SyncProtocol, n int) {
	for _, p := range protos {
		if r, ok := p.(NeighborReserver); ok {
			r.ReserveNeighbors(n)
		}
	}
}

// phase1 collects the slot's active nodes, pulls their decisions through
// the stepper seam — one NextBatch call when the stepper supports it —
// and scatters them: fused validation, the per-channel transmitter index,
// the channel-major transmitter word masks, and (batched path) the
// per-channel listener buckets.
//
//nd:hotpath
func (r *syncRun) phase1(slot int, active []bool, locals, startSlots []int) error {
	r.ev.Time, r.ev.Slot = float64(slot), slot
	nb := 0
	us, ks := r.us, r.ks
	if active == nil && startSlots == nil {
		// Static run, uniform start: every node is active with local slot
		// == global slot, so skip the per-node activity scan (us was
		// prefilled 0..n-1 at setup).
		nb = r.n
		for i := 0; i < nb; i++ {
			ks[i] = slot
		}
		return r.phase2(slot, nb)
	}
	for u := 0; u < r.n; u++ {
		var local int
		if active != nil {
			if !active[u] {
				r.actions[u] = radio.Action{Mode: radio.Quiet}
				continue
			}
			local = locals[u]
			locals[u]++
		} else {
			start := 0
			if startSlots != nil {
				start = startSlots[u]
			}
			if slot < start {
				r.actions[u] = radio.Action{Mode: radio.Quiet}
				continue
			}
			local = slot - start
		}
		us[nb] = topology.NodeID(u)
		ks[nb] = local
		nb++
	}
	return r.phase2(slot, nb)
}

// phase2 pulls the slot's nb collected decisions through the stepper seam
// — one NextBatch call when the stepper supports it — validates them, and
// scatters them into the per-channel transmitter index and word masks.
//
//nd:hotpath
func (r *syncRun) phase2(slot, nb int) error {
	us, ks := r.us, r.ks
	dec := r.dec[:nb]
	if r.tallyInternals {
		r.internals.StepperBatches++
		r.internals.StepperBatchNodes += int64(nb)
		if int64(nb) > r.internals.MaxStepperBatch {
			r.internals.MaxStepperBatch = int64(nb)
		}
		if r.bst != nil {
			r.internals.BatchSteps++
		}
	}
	if r.bst != nil {
		r.bst.NextBatch(us[:nb], ks[:nb], dec)
	} else {
		for i := 0; i < nb; i++ {
			dec[i] = r.st.Next(us[i], ks[i])
		}
	}
	for i := 0; i < nb; i++ {
		a := dec[i]
		u := us[i]
		// One switch covers validation and scatter. Validation is fused:
		// the cheap membership check inline — a single word test when
		// every channel ID fits one word (avail1), the set lookup
		// otherwise — and the full Validate only on the failure path for
		// its error message.
		switch a.Mode {
		case radio.Transmit:
			c := a.Channel
			if r.avail1 != nil {
				if uint64(c) > 63 || r.avail1[u]&(uint64(1)<<uint64(c)) == 0 {
					return fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
				}
			} else if !r.nw.Avail(u).Contains(c) {
				return fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
			}
			if r.txOn[c] == 0 {
				r.txTouched = append(r.txTouched, c)
			}
			r.txOn[c]++
			if r.txWords != nil {
				channel.SetBit(r.txWords[int(c)*r.wordsPer:(int(c)+1)*r.wordsPer], int(u))
			}
		case radio.Receive:
			c := a.Channel
			if r.avail1 != nil {
				if uint64(c) > 63 || r.avail1[u]&(uint64(1)<<uint64(c)) == 0 {
					return fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
				}
			} else if !r.nw.Avail(u).Contains(c) {
				return fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
			}
			if r.rx != nil {
				if len(r.rx[c]) == 0 {
					r.rxTouched = append(r.rxTouched, c)
				}
				r.rx[c] = append(r.rx[c], topology.NodeID(u))
			} else if r.rxList != nil {
				// Kernel path: a flat listener list, ascending because us
				// is, so resolveKernel visits exactly the slot's listeners
				// instead of scanning every node.
				r.rxList = append(r.rxList, topology.NodeID(u))
				r.rxChs = append(r.rxChs, c)
			}
		case radio.Quiet:
		default:
			return fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
		}
		if r.storeActions {
			r.actions[u] = a
		}
	}
	return nil
}

// resolveBatched is the channel-major loss-free path: listeners resolve
// grouped by channel, and only channels carrying a transmission are
// visited — a listener on a silent channel hears nothing and (no
// observer) needs no event, so it is never touched. Each listener still
// resolves through its own candidate-mask row, so results match the
// listener-major kernel bit for bit; only the iteration order differs,
// which the no-observer loss-free preconditions make invisible.
//
//nd:hotpath
func (r *syncRun) resolveBatched(slot int) {
	for _, c := range r.txTouched {
		listeners := r.rx[c]
		if len(listeners) == 0 {
			continue
		}
		ci := int(c) * r.wordsPer
		txw := r.txWords[ci : ci+r.wordsPer]
		for _, uid := range listeners {
			row, lo := r.masks.Row(uid, c)
			if count, first := channel.OverlapResolve(row, txw[lo:]); count == 1 {
				r.deliver(topology.NodeID(lo*64+first), uid, c, slot)
			}
		}
	}
}

// resolveKernel is the listener-major kernel path: ascending NodeID order
// — the event and loss-draw contracts — with the candidate scan replaced
// by one word-kernel intersection per listener. Loss-free listeners
// resolve entirely inside OverlapResolve; lossy listeners walk the
// surviving overlap bits in candidate order, drawing per bit.
//
//nd:hotpath
func (r *syncRun) resolveKernel(slot int) {
	for i, uid := range r.rxList {
		c := r.rxChs[i]
		if r.txOn[c] == 0 {
			// Nobody transmits on c: certain silence, no draws.
			if r.wantIdle {
				r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventIdle, 0, uid, c
				r.obs.OnEvent(r.ev)
			}
			continue
		}
		row, lo := r.masks.Row(uid, c)
		txw := r.txWords[int(c)*r.wordsPer : (int(c)+1)*r.wordsPer]
		if r.lossFree {
			count, first := channel.OverlapResolve(row, txw[lo:])
			switch count {
			case 1:
				r.deliver(topology.NodeID(lo*64+first), uid, c, slot)
			case 0:
				if r.wantIdle {
					r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventIdle, 0, uid, c
					r.obs.OnEvent(r.ev)
				}
			default:
				if r.wantColl {
					r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventCollision, topology.NodeID(lo*64+first), uid, c
					r.obs.OnEvent(r.ev)
				}
			}
			continue
		}
		r.resolveLossy(uid, c, row, txw, lo, slot)
	}
}

// resolveLossy resolves one lossy listener: the word-kernel intersection
// prunes certain silence without consuming any erasure draws, then the
// surviving overlap bits are walked in ascending candidate order drawing
// exactly as the scalar scan would — one draw per candidate transmitting
// on the listener's channel over an operating link, stopping at the
// second surviving transmission.
//
//nd:hotpath
func (r *syncRun) resolveLossy(uid topology.NodeID, c channel.ID, row, txw []uint64, lo, slot int) {
	r.ovl = channel.OverlapInto(r.ovl, row, txw[lo:])
	var sender, firstSender topology.NodeID
	senders := 0
scan:
	for i, w := range r.ovl {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			// Unreliable channels: the transmission may fade at uid.
			if r.loss.erased() {
				continue
			}
			v := topology.NodeID((lo+i)*64 + b)
			if senders == 0 {
				firstSender = v
			}
			senders++
			sender = v
			if senders > 1 {
				break scan // collision; no need to scan further
			}
		}
	}
	if senders == 1 {
		r.deliver(sender, uid, c, slot)
		return
	}
	if senders == 0 {
		if r.wantIdle {
			r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventIdle, 0, uid, c
			r.obs.OnEvent(r.ev)
		}
	} else if r.wantColl {
		r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventCollision, firstSender, uid, c
		r.obs.OnEvent(r.ev)
	}
}

// resolveScalar is the candidate-list scan retained for dynamic worlds
// (per-epoch tables) and over-budget networks; it is the original Phase 2
// loop of the listener-major engine.
//
//nd:hotpath
func (r *syncRun) resolveScalar(slot int) {
	for u := 0; u < r.n; u++ {
		if r.actions[u].Mode != radio.Receive {
			continue
		}
		uid := topology.NodeID(u)
		c := r.actions[u].Channel
		if r.txOn[c] == 0 {
			// Nobody transmits on c: certain silence, no draws.
			if r.wantIdle {
				r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventIdle, 0, uid, c
				r.obs.OnEvent(r.ev)
			}
			continue
		}
		var sender, firstSender topology.NodeID
		senders := 0
		for _, cand := range r.curCands[u] {
			if r.actions[cand.From].Mode != radio.Transmit || r.actions[cand.From].Channel != c {
				continue
			}
			// The link must operate on c (span precomputed per candidate;
			// adjacency and direction already hold for every candidate).
			if !cand.Span.Contains(c) {
				continue
			}
			// Unreliable channels: the transmission may fade at u.
			if r.loss.erased() {
				continue
			}
			if senders == 0 {
				firstSender = cand.From
			}
			senders++
			sender = cand.From
			if senders > 1 {
				break // collision; no need to scan further
			}
		}
		if senders != 1 {
			// Silence or collision: the node hears nothing useful. The
			// collision event reports only the first surviving transmitter
			// — scanning past the second would consume extra loss draws
			// and break the reproducibility contract above.
			if senders == 0 {
				if r.wantIdle {
					r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventIdle, 0, uid, c
					r.obs.OnEvent(r.ev)
				}
			} else if r.wantColl {
				r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventCollision, firstSender, uid, c
				r.obs.OnEvent(r.ev)
			}
			continue
		}
		r.deliver(sender, uid, c, slot)
	}
}

// deliver is the shared delivery tail: message construction with the
// per-run heard-reporter cache, protocol delivery, covered-link
// deduplication in front of the coverage oracle (static runs; a repeat
// observation of a seen link is a no-op there, so skipping it is pure),
// and the delivery event.
//
//nd:hotpath
func (r *syncRun) deliver(sender, uid topology.NodeID, c channel.ID, slot int) {
	msg := radio.Message{From: sender, Avail: r.msgAvail[sender]}
	if hr := r.hrs[sender]; hr != nil {
		msg.Heard = copyHeard(hr.Heard())
	}
	r.protos[uid].Deliver(msg)
	if r.covered != nil {
		idx := int(sender)*r.n + int(uid)
		w, bit := idx>>6, uint64(1)<<(uint(idx)&63)
		if r.covered[w]&bit == 0 {
			r.covered[w] |= bit
			r.coverage.Observe(topology.Link{From: sender, To: uid}, float64(slot))
		}
	} else {
		r.coverage.Observe(topology.Link{From: sender, To: uid}, float64(slot))
	}
	if r.wantDeliver {
		r.ev.Kind, r.ev.From, r.ev.To, r.ev.Channel = EventDeliver, sender, uid, c
		r.obs.OnEvent(r.ev)
	}
}

// clearSlot resets the per-slot transmitter index, word masks, and
// listener buckets for the next slot.
//
//nd:hotpath
func (r *syncRun) clearSlot() {
	for _, c := range r.txTouched {
		r.txOn[c] = 0
		if r.txWords != nil {
			txw := r.txWords[int(c)*r.wordsPer : (int(c)+1)*r.wordsPer]
			for i := range txw {
				txw[i] = 0
			}
		}
	}
	r.txTouched = r.txTouched[:0]
	if r.rx != nil {
		for _, c := range r.rxTouched {
			r.rx[c] = r.rx[c][:0]
		}
		r.rxTouched = r.rxTouched[:0]
	}
	r.rxList, r.rxChs = r.rxList[:0], r.rxChs[:0]
}
