package sim

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// scriptSync is a deterministic protocol for unit-testing engine semantics:
// it plays back a fixed list of actions (repeating the last one) and records
// deliveries.
type scriptSync struct {
	actions   []radio.Action
	delivered []radio.Message
}

func (s *scriptSync) Step(localSlot int) radio.Action {
	if localSlot < len(s.actions) {
		return s.actions[localSlot]
	}
	if len(s.actions) == 0 {
		return radio.Action{Mode: radio.Quiet}
	}
	return s.actions[len(s.actions)-1]
}

func (s *scriptSync) Deliver(msg radio.Message) {
	s.delivered = append(s.delivered, msg)
}

func tx(c channel.ID) radio.Action { return radio.Action{Mode: radio.Transmit, Channel: c} }
func rx(c channel.ID) radio.Action { return radio.Action{Mode: radio.Receive, Channel: c} }
func quiet() radio.Action          { return radio.Action{Mode: radio.Quiet} }

// pairNet builds a 2-node network where both nodes have the given sets.
func pairNet(t *testing.T, a, b channel.Set) *topology.Network {
	t.Helper()
	nw, err := topology.Pair()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetAvail(0, a)
	nw.SetAvail(1, b)
	return nw
}

func TestSyncConfigValidation(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	good := func() SyncConfig {
		return SyncConfig{
			Network:   nw,
			Protocols: []SyncProtocol{&scriptSync{}, &scriptSync{}},
			MaxSlots:  10,
		}
	}
	if _, err := RunSync(good()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*SyncConfig){
		"nil network":    func(c *SyncConfig) { c.Network = nil },
		"protocol count": func(c *SyncConfig) { c.Protocols = c.Protocols[:1] },
		"nil protocol":   func(c *SyncConfig) { c.Protocols[1] = nil },
		"start count":    func(c *SyncConfig) { c.StartSlots = []int{0} },
		"negative start": func(c *SyncConfig) { c.StartSlots = []int{0, -1} },
		"zero max slots": func(c *SyncConfig) { c.MaxSlots = 0 },
		"negative slots": func(c *SyncConfig) { c.MaxSlots = -5 },
	}
	for name, mutate := range cases {
		cfg := good()
		mutate(&cfg)
		if _, err := RunSync(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSyncCleanReception(t *testing.T) {
	nw := pairNet(t, channel.NewSet(3, 4), channel.NewSet(3, 5))
	sender := &scriptSync{actions: []radio.Action{tx(3)}}
	receiver := &scriptSync{actions: []radio.Action{rx(3)}}
	res, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{sender, receiver},
		MaxSlots:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 1 {
		t.Fatalf("receiver got %d messages, want 1", len(receiver.delivered))
	}
	msg := receiver.delivered[0]
	if msg.From != 0 {
		t.Fatalf("message from %d, want 0", msg.From)
	}
	if !msg.Avail.Equal(channel.NewSet(3, 4)) {
		t.Fatalf("message avail %v, want {3,4}", msg.Avail)
	}
	if len(sender.delivered) != 0 {
		t.Fatal("half duplex violated: transmitter received")
	}
	// Coverage: link (0,1) covered, (1,0) not.
	if _, ok := res.Coverage.FirstCovered(topology.Link{From: 0, To: 1}); !ok {
		t.Fatal("link (0,1) not covered")
	}
	if _, ok := res.Coverage.FirstCovered(topology.Link{From: 1, To: 0}); ok {
		t.Fatal("link (1,0) spuriously covered")
	}
}

func TestSyncNoReceptionAcrossChannels(t *testing.T) {
	nw := pairNet(t, channel.NewSet(1, 2), channel.NewSet(1, 2))
	sender := &scriptSync{actions: []radio.Action{tx(1)}}
	receiver := &scriptSync{actions: []radio.Action{rx(2)}}
	if _, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{sender, receiver},
		MaxSlots:  1,
	}); err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 0 {
		t.Fatal("received across different channels")
	}
}

func TestSyncCollision(t *testing.T) {
	// Star: hub 0 with leaves 1, 2. Both leaves transmit on the same
	// channel; hub hears noise.
	nw, err := topology.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	all := channel.NewSet(0)
	for u := 0; u < 3; u++ {
		nw.SetAvail(topology.NodeID(u), all)
	}
	hub := &scriptSync{actions: []radio.Action{rx(0)}}
	leaf1 := &scriptSync{actions: []radio.Action{tx(0)}}
	leaf2 := &scriptSync{actions: []radio.Action{tx(0)}}
	if _, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{hub, leaf1, leaf2},
		MaxSlots:  1,
	}); err != nil {
		t.Fatal(err)
	}
	if len(hub.delivered) != 0 {
		t.Fatal("collision delivered a message")
	}
}

func TestSyncNonNeighborDoesNotInterfere(t *testing.T) {
	// Line 0—1—2: nodes 0 and 2 both transmit on channel 0; node 1 hears a
	// collision. But on a 4-node line 0—1—2—3, node 3's transmission does
	// not reach node 1, so node 0's transmission is received cleanly by 1.
	nw, err := topology.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	all := channel.NewSet(0)
	for u := 0; u < 4; u++ {
		nw.SetAvail(topology.NodeID(u), all)
	}
	n0 := &scriptSync{actions: []radio.Action{tx(0)}}
	n1 := &scriptSync{actions: []radio.Action{rx(0)}}
	n2 := &scriptSync{actions: []radio.Action{rx(0)}}
	n3 := &scriptSync{actions: []radio.Action{tx(0)}}
	if _, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{n0, n1, n2, n3},
		MaxSlots:  1,
	}); err != nil {
		t.Fatal(err)
	}
	// Node 1 hears 0 and... its neighbors are 0 and 2; 2 listens, so only 0
	// transmits among 1's neighbors: clean.
	if len(n1.delivered) != 1 || n1.delivered[0].From != 0 {
		t.Fatalf("node 1 deliveries: %+v", n1.delivered)
	}
	// Node 2's neighbors are 1 (listening) and 3 (transmitting): clean from 3.
	if len(n2.delivered) != 1 || n2.delivered[0].From != 3 {
		t.Fatalf("node 2 deliveries: %+v", n2.delivered)
	}
}

func TestSyncSpanRestrictionBlocksReception(t *testing.T) {
	// Both nodes share channels {0,1} but the link is restricted to {1}
	// (diverse propagation): a transmission on 0 neither delivers nor
	// interferes.
	nw := pairNet(t, channel.NewSet(0, 1), channel.NewSet(0, 1))
	if err := nw.RestrictSpan(0, 1, channel.NewSet(1)); err != nil {
		t.Fatal(err)
	}
	sender := &scriptSync{actions: []radio.Action{tx(0), tx(1)}}
	receiver := &scriptSync{actions: []radio.Action{rx(0), rx(1)}}
	if _, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     []SyncProtocol{sender, receiver},
		MaxSlots:      2,
		RunToMaxSlots: true,
	}); err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 1 {
		t.Fatalf("deliveries = %d, want 1 (only the on-span slot)", len(receiver.delivered))
	}
}

func TestSyncStartSlotsDelayNodes(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	sender := &scriptSync{actions: []radio.Action{tx(0)}}
	receiver := &scriptSync{actions: []radio.Action{rx(0)}}
	res, err := RunSync(SyncConfig{
		Network:    nw,
		Protocols:  []SyncProtocol{sender, receiver},
		StartSlots: []int{0, 5}, // receiver silent before slot 5
		MaxSlots:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	at, ok := res.Coverage.FirstCovered(topology.Link{From: 0, To: 1})
	if !ok {
		t.Fatal("link never covered")
	}
	if at != 5 {
		t.Fatalf("covered at slot %v, want 5 (receiver start)", at)
	}
}

func TestSyncInvalidActionRejected(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	bad := &scriptSync{actions: []radio.Action{tx(7)}} // channel 7 not available
	other := &scriptSync{actions: []radio.Action{rx(0)}}
	if _, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{bad, other},
		MaxSlots:  1,
	}); err == nil {
		t.Fatal("out-of-set transmission accepted")
	}
}

func TestSyncStopsAtCompletion(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	// Alternate roles: slot 0 covers (0,1), slot 1 covers (1,0).
	p0 := &scriptSync{actions: []radio.Action{tx(0), rx(0)}}
	p1 := &scriptSync{actions: []radio.Action{rx(0), tx(0)}}
	res, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{p0, p1},
		MaxSlots:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("run incomplete")
	}
	if res.CompletionSlot != 1 {
		t.Fatalf("completion slot %d, want 1", res.CompletionSlot)
	}
	if res.SlotsSimulated != 2 {
		t.Fatalf("simulated %d slots, want 2 (stop at completion)", res.SlotsSimulated)
	}
}

func TestSyncRunToMaxSlots(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	p0 := &scriptSync{actions: []radio.Action{tx(0), rx(0)}}
	p1 := &scriptSync{actions: []radio.Action{rx(0), tx(0)}}
	res, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     []SyncProtocol{p0, p1},
		MaxSlots:      50,
		RunToMaxSlots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotsSimulated != 50 {
		t.Fatalf("simulated %d slots, want 50", res.SlotsSimulated)
	}
	if !res.Complete {
		t.Fatal("run incomplete")
	}
}

func TestSyncOnHooks(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	p0 := &scriptSync{actions: []radio.Action{tx(0)}}
	p1 := &scriptSync{actions: []radio.Action{rx(0)}}
	slotCalls, deliverCalls := 0, 0
	_, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     []SyncProtocol{p0, p1},
		MaxSlots:      3,
		RunToMaxSlots: true,
		Observer: ObserverFunc(func(e Event) {
			switch e.Kind {
			case EventSlot:
				slotCalls++
				if len(e.Actions) != 2 {
					t.Errorf("EventSlot saw %d actions", len(e.Actions))
				}
			case EventDeliver:
				deliverCalls++
				if e.From != 0 || e.To != 1 || e.Channel != 0 {
					t.Errorf("EventDeliver(%d, %d->%d, ch %d)", e.Slot, e.From, e.To, e.Channel)
				}
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if slotCalls != 3 {
		t.Fatalf("EventSlot emitted %d times, want 3", slotCalls)
	}
	if deliverCalls != 3 {
		t.Fatalf("EventDeliver emitted %d times, want 3", deliverCalls)
	}
}

func TestSyncMessageAvailIsIsolated(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0, 4), channel.NewSet(0))
	sender := &scriptSync{actions: []radio.Action{tx(0)}}
	receiver := &scriptSync{actions: []radio.Action{rx(0)}}
	if _, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{sender, receiver},
		MaxSlots:  1,
	}); err != nil {
		t.Fatal(err)
	}
	got := receiver.delivered[0].Avail
	got.Add(60)
	if nw.Avail(0).Contains(60) {
		t.Fatal("message aliased network channel set")
	}
}

func TestSyncIntegrationUniformProtocolCompletes(t *testing.T) {
	// Real Algorithm 3 on a 5-clique with 3 common channels must discover
	// everything well within the analytic bound.
	nw, err := topology.Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 3); err != nil {
		t.Fatal(err)
	}
	root := rng.New(77)
	protos := make([]SyncProtocol, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), 4, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		protos[u] = p
	}
	res, err := RunSync(SyncConfig{Network: nw, Protocols: protos, MaxSlots: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("algorithm 3 did not complete in 20000 slots; %s", res.Coverage)
	}
	// Node tables must agree with the oracle.
	for u := 0; u < nw.N(); u++ {
		table := protos[u].(*core.SyncUniform).Neighbors()
		for _, v := range nw.Neighbors(topology.NodeID(u)) {
			common, ok := table.Common(v)
			if !ok {
				t.Fatalf("node %d missing neighbor %d", u, v)
			}
			if !common.Equal(nw.Span(topology.NodeID(u), v)) {
				t.Fatalf("node %d neighbor %d common %v, want %v", u, v, common, nw.Span(topology.NodeID(u), v))
			}
		}
	}
}

func TestSyncDeterminismWithSeeds(t *testing.T) {
	run := func() int {
		nw, err := topology.Clique(4)
		if err != nil {
			t.Fatal(err)
		}
		if err := topology.AssignHomogeneous(nw, 2); err != nil {
			t.Fatal(err)
		}
		root := rng.New(123)
		protos := make([]SyncProtocol, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewSyncStaged(nw.Avail(topology.NodeID(u)), 4, root.Split())
			if err != nil {
				t.Fatal(err)
			}
			protos[u] = p
		}
		res, err := RunSync(SyncConfig{Network: nw, Protocols: protos, MaxSlots: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatal("incomplete")
		}
		return res.CompletionSlot
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different completion slots: %d vs %d", a, b)
	}
}
