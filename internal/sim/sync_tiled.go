package sim

import (
	"fmt"

	"m2hew/internal/channel"
	"m2hew/internal/harness/tilepool"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// This file is the tiled parallel resolver — the sharded sync engine. The
// geometric graph is partitioned into grid tiles (topology.Tiling, cell
// side ≥ radius), each slot runs as two fork-join phases on a tilepool:
//
//	phase A  every tile, in parallel: clear its per-slot state, pull its
//	         nodes' decisions through the stepper seam, validate, and
//	         scatter transmitters into the tile-local per-channel word
//	         masks and listeners into the tile's listener list;
//	barrier  the pool's join publishes every tile's transmitter masks;
//	phase B  every tile, in parallel: for each listening channel, assemble
//	         the halo transmitter mask by word-copying the 3×3 neighbor
//	         tiles' segments, intersect each listener's halo-local
//	         candidate row (topology.TileMasks) against it, and deliver
//	         unique survivors to the listener's protocol;
//	apply    the caller, sequentially in ascending tile order: covered-link
//	         dedup and coverage bookkeeping for the phase's deliveries.
//
// Byte-identity with the single-threaded engine at matched seed rests on
// the same argument as the batched (channel-major) path, whose
// preconditions the tiled path shares (static world, loss-free, no
// per-listener observer subscription):
//
//   - decisions: every protocol draws from its own per-node rng stream and
//     per-node pull order is preserved (ascending local slot), so pulling
//     tile-by-tile in parallel yields the decision sequences the serial
//     engine pulls — the pool's barrier separates slot s's pulls from slot
//     s's deliveries exactly as the serial phase split does, so even
//     adaptive (non-oblivious) protocols see the identical interleaving of
//     Step and Deliver calls;
//   - resolution: each listener is resolved by exactly one tile (its own),
//     against a halo mask that the barrier guarantees is the slot's
//     complete transmitter picture within radio reach (NewTileMasks proved
//     structurally that no candidate lies outside the halo), through the
//     same OverlapResolve kernel as the flat paths;
//   - effects: with no loss model there are no shared-rng draws to order,
//     with no per-listener events there is no event order to preserve, a
//     listener receives at most one delivery per slot, and half duplex
//     means no sender's state (HeardReporter snapshots included) can
//     change mid-slot — so the within-slot delivery order is invisible,
//     and the order-sensitive residue (coverage bookkeeping) is applied
//     sequentially after the barrier;
//   - errors: each tile validates its nodes in ascending NodeID order and
//     stops at its first failure; the engine reports the minimum failing
//     node across tiles, which is the first failure the serial ascending
//     scan would have hit (validity is a per-node property), with the
//     identical message.
type tiledRun struct {
	tl       *topology.Tiling
	masks    *topology.TileMasks
	pool     *tilepool.Pool
	tiles    []tileState
	channels int

	// Per-slot inputs to the phase closures, set by tiledSlot before each
	// pool round; the closures themselves are built once per run.
	slot       int
	startSlots []int
	fnA, fnB   func(int)
}

// tileDelivery is one phase-B delivery, queued for the sequential
// coverage-apply step.
type tileDelivery struct {
	from, to topology.NodeID
}

// tileState is one tile's scratch: phase A's decision and scatter buffers,
// phase B's halo assembly, and the tile's internals tallies. Workers touch
// only their own tile's state during a phase (phase B additionally READS
// neighbor tiles' phase-A outputs, sequenced by the pool barrier), so no
// two goroutines ever write the same state.
type tileState struct {
	nodes     []topology.NodeID // the tile's nodes, ascending (shared storage)
	words     int               // word width of the tile's own segment
	haloWords int               // word width of the tile's halo space

	us  []topology.NodeID
	ks  []int
	dec []radio.Action

	localTx   []uint64 // channel-major transmitter masks, channels × words
	txOn      []int32  // per-channel transmitter count in this tile
	txTouched []channel.ID

	rxU []topology.NodeID
	rxC []channel.ID

	halo      []uint64 // channel-major halo masks, channels × haloWords
	haloStamp []int    // per channel: slot of last assembly (-1 = never)
	haloLive  []bool   // per channel: any transmitter present at last assembly

	deliv []tileDelivery

	err     error
	errNode topology.NodeID

	// Internals tallies, accumulated in-worker (gated on tallyInternals)
	// and summed deterministically at run end.
	batches, batchNodes, maxBatch, batchSteps int64
	haloEx, haloWordsCopied                   int64
}

// buildTileStates sizes one tileState per tile for the given tiling and
// channel count.
func buildTileStates(tl *topology.Tiling, channels int) []tileState {
	tiles := make([]tileState, tl.Tiles())
	for t := range tiles {
		ts := &tiles[t]
		ts.nodes = tl.TileNodes(t)
		ts.words = tl.TileWords(t)
		ts.haloWords = tl.HaloWords(t)
		n := len(ts.nodes)
		ts.us = make([]topology.NodeID, n)
		ts.ks = make([]int, n)
		ts.dec = make([]radio.Action, n)
		ts.localTx = make([]uint64, channels*ts.words)
		ts.txOn = make([]int32, channels)
		ts.txTouched = make([]channel.ID, 0, 8)
		ts.rxU = make([]topology.NodeID, 0, n)
		ts.rxC = make([]channel.ID, 0, n)
		ts.halo = make([]uint64, channels*ts.haloWords)
		ts.haloStamp = make([]int, channels)
		ts.haloLive = make([]bool, channels)
	}
	return tiles
}

// resetTileStates re-zeroes the per-run state: an errored previous run may
// have returned mid-slot with live bits, counts and queues in place.
func resetTileStates(tiles []tileState) {
	for t := range tiles {
		ts := &tiles[t]
		copy(ts.us, ts.nodes) // uniform-start phase A reads us prefilled
		for i := range ts.localTx {
			ts.localTx[i] = 0
		}
		for i := range ts.txOn {
			ts.txOn[i] = 0
		}
		ts.txTouched = ts.txTouched[:0]
		ts.rxU, ts.rxC = ts.rxU[:0], ts.rxC[:0]
		for i := range ts.haloStamp {
			ts.haloStamp[i] = -1
			ts.haloLive[i] = false
		}
		ts.deliv = ts.deliv[:0]
		ts.err = nil
		ts.errNode = 0
		ts.batches, ts.batchNodes, ts.maxBatch, ts.batchSteps = 0, 0, 0, 0
		ts.haloEx, ts.haloWordsCopied = 0, 0
	}
}

// tiledSlot executes one slot on the tiled path: phase A across the pool,
// the error sweep, the slot event, phase B across the pool, and the
// sequential coverage apply.
//
//nd:hotpath
func (r *syncRun) tiledSlot(slot int) error {
	tr := r.tiled
	tr.slot = slot
	tr.pool.Run(len(tr.tiles), tr.fnA)

	// Error sweep: the minimum failing node across tiles is the failure the
	// serial ascending scan would have reported first.
	var firstErr error
	firstNode := topology.NodeID(-1)
	for t := range tr.tiles {
		ts := &tr.tiles[t]
		if ts.err != nil && (firstNode < 0 || ts.errNode < firstNode) {
			firstErr, firstNode = ts.err, ts.errNode
		}
	}
	if firstErr != nil {
		return firstErr
	}

	if r.wantSlot {
		r.obs.OnEvent(Event{
			Kind: EventSlot, Time: float64(slot), Slot: slot,
			Actions: r.actions,
		})
	}

	tr.pool.Run(len(tr.tiles), tr.fnB)

	// Sequential apply: coverage bookkeeping shares state across tiles
	// (dedup bitmap words, the coverage oracle), so it runs on the caller
	// in ascending tile order. Within-slot order is invisible in results —
	// every delivery carries the same slot stamp and each link is observed
	// at most once per slot — so any fixed order matches the serial engine.
	for t := range tr.tiles {
		ts := &tr.tiles[t]
		for _, d := range ts.deliv {
			if r.covered != nil {
				idx := int(d.from)*r.n + int(d.to)
				w, bit := idx>>6, uint64(1)<<(uint(idx)&63)
				if r.covered[w]&bit != 0 {
					continue
				}
				r.covered[w] |= bit
			}
			r.coverage.Observe(topology.Link{From: d.from, To: d.to}, float64(slot))
		}
	}
	return nil
}

// tileSlotA is phase A for one tile: clear the tile's previous slot, pull
// its active nodes' decisions, validate, and scatter.
//
//nd:hotpath
func (r *syncRun) tileSlotA(ti int) {
	tr := r.tiled
	ts := &tr.tiles[ti]
	slot := tr.slot

	for _, c := range ts.txTouched {
		ts.txOn[c] = 0
		seg := ts.localTx[int(c)*ts.words : (int(c)+1)*ts.words]
		for i := range seg {
			seg[i] = 0
		}
	}
	ts.txTouched = ts.txTouched[:0]
	ts.rxU, ts.rxC = ts.rxU[:0], ts.rxC[:0]
	ts.deliv = ts.deliv[:0]
	ts.err = nil

	// Collect the tile's active nodes, mirroring phase1: us stays prefilled
	// with the tile's nodes on the uniform-start fast path.
	us, ks := ts.us, ts.ks
	nb := 0
	if tr.startSlots == nil {
		nb = len(ts.nodes)
		for i := 0; i < nb; i++ {
			ks[i] = slot
		}
	} else {
		for _, u := range ts.nodes {
			if start := tr.startSlots[u]; slot < start {
				r.actions[u] = radio.Action{Mode: radio.Quiet}
				continue
			} else {
				us[nb] = u
				ks[nb] = slot - start
				nb++
			}
		}
	}
	if nb == 0 {
		return
	}

	dec := ts.dec[:nb]
	if r.tallyInternals {
		ts.batches++
		ts.batchNodes += int64(nb)
		if int64(nb) > ts.maxBatch {
			ts.maxBatch = int64(nb)
		}
		if r.bst != nil {
			ts.batchSteps++
		}
	}
	if r.bst != nil {
		r.bst.NextBatch(us[:nb], ks[:nb], dec)
	} else {
		for i := 0; i < nb; i++ {
			dec[i] = r.st.Next(us[i], ks[i])
		}
	}

	for i := 0; i < nb; i++ {
		a := dec[i]
		u := us[i]
		switch a.Mode {
		case radio.Transmit:
			c := a.Channel
			if !r.tileValid(u, c) {
				ts.err = fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
				ts.errNode = u
				return
			}
			if ts.txOn[c] == 0 {
				ts.txTouched = append(ts.txTouched, c)
			}
			ts.txOn[c]++
			channel.SetBit(ts.localTx[int(c)*ts.words:(int(c)+1)*ts.words], tr.tl.LocalIndex(u))
		case radio.Receive:
			c := a.Channel
			if !r.tileValid(u, c) {
				ts.err = fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
				ts.errNode = u
				return
			}
			ts.rxU = append(ts.rxU, u)
			ts.rxC = append(ts.rxC, c)
		case radio.Quiet:
		default:
			ts.err = fmt.Errorf("sim: node %d slot %d: %w", u, slot, a.Validate(r.nw.Avail(u)))
			ts.errNode = u
			return
		}
		if r.storeActions {
			r.actions[u] = a
		}
	}
}

// tileValid is phase A's fused membership check, identical to phase2's: the
// single-word mask test when every channel ID fits one word, the set lookup
// otherwise.
//
//nd:hotpath
func (r *syncRun) tileValid(u topology.NodeID, c channel.ID) bool {
	if r.avail1 != nil {
		return uint64(c) <= 63 && r.avail1[u]&(uint64(1)<<uint64(c)) != 0
	}
	return r.nw.Avail(u).Contains(c)
}

// tileSlotB is phase B for one tile: lazy per-channel halo assembly, then
// one OverlapResolve per listener.
//
//nd:hotpath
func (r *syncRun) tileSlotB(ti int) {
	tr := r.tiled
	ts := &tr.tiles[ti]
	slot := tr.slot
	hood := tr.tl.HaloTiles(ti)
	segs := tr.tl.HaloSegments(ti)
	for i, uid := range ts.rxU {
		c := ts.rxC[i]
		base := int(c) * ts.haloWords
		if ts.haloStamp[c] != slot {
			// First listener on c this slot: assemble the channel's halo
			// mask. Every segment is fully written (copied or zeroed), so
			// stale bits from earlier slots never survive.
			ts.haloStamp[c] = slot
			live := false
			for j, s := range hood {
				src := &tr.tiles[s]
				dst := ts.halo[base+int(segs[j]) : base+int(segs[j+1])]
				if src.txOn[c] == 0 {
					for k := range dst {
						dst[k] = 0
					}
					continue
				}
				live = true
				copy(dst, src.localTx[int(c)*src.words:(int(c)+1)*src.words])
				if r.tallyInternals && int(s) != ti {
					ts.haloEx++
					ts.haloWordsCopied += int64(len(dst))
				}
			}
			ts.haloLive[c] = live
		}
		if !ts.haloLive[c] {
			continue // certain silence within radio reach of the whole tile
		}
		row, lo := tr.masks.Row(uid, c)
		if count, first := channel.OverlapResolve(row, ts.halo[base+lo:base+ts.haloWords]); count == 1 {
			r.tiledDeliver(ts, tr.tl.HaloNode(ti, lo<<6+first), uid)
		}
	}
}

// tiledDeliver delivers one unique transmission to a listener's protocol
// in-worker — safe because each listener belongs to exactly one tile and
// sender state is frozen for the slot (half duplex) — and queues the link
// for the sequential coverage apply.
//
//nd:hotpath
func (r *syncRun) tiledDeliver(ts *tileState, sender, uid topology.NodeID) {
	msg := radio.Message{From: sender, Avail: r.msgAvail[sender]}
	if hr := r.hrs[sender]; hr != nil {
		msg.Heard = copyHeard(hr.Heard())
	}
	r.protos[uid].Deliver(msg)
	ts.deliv = append(ts.deliv, tileDelivery{from: sender, to: uid})
}
