package sim

// Differential sweep for the tiled parallel resolver (sync_tiled.go). The
// tiled path must be byte-identical to the single-threaded engine at
// matched seed across tile counts, worker counts, boundary-straddling
// radii and staggered starts — and must fall back to the single-threaded
// resolvers, deterministically, whenever a precondition fails (loss,
// dynamics, per-listener observers, non-concurrent steppers, tilings
// finer than the connection radius).

import (
	"fmt"
	"runtime"
	"testing"

	"m2hew/internal/dynamics"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// tiledNet builds a connected geometric network with a uniform-k channel
// assignment — the tiled path's home turf: every node has coordinates, so
// any grid tiling with cell side ≥ radius partitions it halo-cleanly.
func tiledNet(t *testing.T, seed uint64, n int, radius float64) *topology.Network {
	t.Helper()
	r := rng.New(seed)
	nw, err := topology.GeometricConnected(n, radius, r, 100)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	if err := topology.AssignUniformK(nw, 6, 3, r); err != nil {
		t.Fatalf("channels: %v", err)
	}
	return nw
}

// randomGeoScenario is randomScenario's geometric twin: a connected
// geometric graph (nodes carry coordinates, so tilings exist) plus a
// scripted action schedule with the same 0/1/2+ transmitter density mix.
func randomGeoScenario(t *testing.T, r *rng.Source) (*topology.Network, [][]radio.Action, float64) {
	t.Helper()
	n := r.IntN(24) + 8
	radius := 0.25 + r.Float64()*0.35
	nw, err := topology.Geometric(n, radius, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignBernoulli(nw, r.IntN(4)+1, 0.6, r); err != nil {
		t.Fatal(err)
	}
	slots := r.IntN(30) + 5
	script := make([][]radio.Action, slots)
	for s := range script {
		script[s] = make([]radio.Action, n)
		for u := 0; u < n; u++ {
			avail := nw.Avail(topology.NodeID(u))
			switch r.IntN(5) {
			case 0:
				script[s][u] = radio.Action{Mode: radio.Quiet}
			case 1, 2:
				c, err := avail.Pick(r)
				if err != nil {
					t.Fatal(err)
				}
				script[s][u] = radio.Action{Mode: radio.Transmit, Channel: c}
			default:
				c, err := avail.Pick(r)
				if err != nil {
					t.Fatal(err)
				}
				script[s][u] = radio.Action{Mode: radio.Receive, Channel: c}
			}
		}
	}
	return nw, script, radius
}

// mustTiling builds a cols×rows tiling or fails the test.
func mustTiling(t *testing.T, nw *topology.Network, cols, rows int) *topology.Tiling {
	t.Helper()
	tl, err := topology.NewTiling(nw, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// runTiledSeeded runs seeded staged protocols with the given tiled config
// knobs and returns the result plus the internals report.
func runTiledSeeded(t *testing.T, nw *topology.Network, seed uint64, tl *topology.Tiling, workers, maxSlots int) (*SyncResult, Internals) {
	t.Helper()
	rec := &InternalsRecorder{}
	res, err := RunSync(SyncConfig{
		Network:     nw,
		Protocols:   syncProtos(t, nw, seed),
		MaxSlots:    maxSlots,
		Tiling:      tl,
		TileWorkers: workers,
		Observer:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.Last
}

// TestSyncTiledMatchesSingleThreaded is the tentpole's byte-identity sweep:
// the same seeded protocols on the same network must produce identical
// results — completion slot, slot count, full coverage record — across the
// single-threaded engine and the tiled engine at tile counts 1, 2, 4 and
// 16 and worker counts 1, 2 and GOMAXPROCS.
func TestSyncTiledMatchesSingleThreaded(t *testing.T) {
	const maxSlots = 4000
	for _, tc := range []struct {
		seed   uint64
		n      int
		radius float64
	}{
		{1, 24, 0.45},
		{7, 40, 0.3},
		{23, 60, 0.26},
	} {
		nw := tiledNet(t, tc.seed, tc.n, tc.radius)
		base, baseIn := runTiledSeeded(t, nw, tc.seed+100, nil, 0, maxSlots)
		if baseIn.TiledSlots != 0 {
			t.Fatalf("seed %d: baseline run took the tiled path", tc.seed)
		}
		for _, grid := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 4}} {
			cols, rows := grid[0], grid[1]
			// Grids finer than the radius allows are still legal configs:
			// the run falls back (covered by TestSyncTiledFallsBack); here
			// we only sweep halo-clean grids.
			if 1.0/float64(cols) < tc.radius || 1.0/float64(rows) < tc.radius {
				continue
			}
			tl := mustTiling(t, nw, cols, rows)
			for _, workers := range []int{1, 2, 0} {
				label := fmt.Sprintf("seed %d grid %dx%d workers %d", tc.seed, cols, rows, workers)
				got, in := runTiledSeeded(t, nw, tc.seed+100, tl, workers, maxSlots)
				if in.TiledSlots != int64(got.SlotsSimulated) {
					t.Fatalf("%s: tiled path did not engage (TiledSlots %d of %d)",
						label, in.TiledSlots, got.SlotsSimulated)
				}
				if got.Complete != base.Complete || got.CompletionSlot != base.CompletionSlot ||
					got.SlotsSimulated != base.SlotsSimulated {
					t.Fatalf("%s: result (%v, %d, %d) vs baseline (%v, %d, %d)",
						label, got.Complete, got.CompletionSlot, got.SlotsSimulated,
						base.Complete, base.CompletionSlot, base.SlotsSimulated)
				}
				sameCoverage(t, label, base.Coverage, got.Coverage)
			}
		}
	}
}

// TestSyncTiledScriptedMatchesNaive pins the tiled resolver's deliveries to
// resolveSlotNaive on seeded random geometric scenarios — including graphs
// where links straddle tile boundaries, the case the halo exchange exists
// for. Tilings come from TilingByRadius, so cell side ≥ radius by
// construction.
func TestSyncTiledScriptedMatchesNaive(t *testing.T) {
	root := rng.New(20260811)
	engaged := 0
	for trial := 0; trial < 60; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script, radius := randomGeoScenario(t, r)
			want := perNode(nw.N(), naiveDeliveries(nw, script, nil))
			tl, err := topology.TilingByRadius(nw, radius, 16)
			if err != nil {
				t.Fatal(err)
			}
			rec := &InternalsRecorder{}
			got := runScripted(t, nw, script, SyncConfig{
				Tiling:      tl,
				TileWorkers: 1 + r.IntN(4),
				Observer:    rec,
			})
			comparePerNode(t, "tiled scripted", got, want)
			if rec.Last.TiledSlots == int64(len(script)) {
				engaged++
			}
		})
	}
	// The sweep is only meaningful if the tiled path actually ran for most
	// scenarios (a mask-budget or halo fallback on every trial would pass
	// vacuously).
	if engaged < 40 {
		t.Fatalf("tiled path engaged in only %d/60 scenarios", engaged)
	}
}

// TestSyncTiledStartSlotsMatchNaive covers staggered starts on the tiled
// path: quiet prefixes pause per-node decision streams identically to the
// serial engine.
func TestSyncTiledStartSlotsMatchNaive(t *testing.T) {
	root := rng.New(20260812)
	for trial := 0; trial < 30; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script, radius := randomGeoScenario(t, r)
			n := nw.N()
			starts := make([]int, n)
			maxStart := 0
			for u := range starts {
				starts[u] = r.IntN(6)
				if starts[u] > maxStart {
					maxStart = starts[u]
				}
			}
			slots := len(script) + maxStart
			global := make([][]radio.Action, slots)
			for s := range global {
				global[s] = make([]radio.Action, n)
				for u := 0; u < n; u++ {
					local := s - starts[u]
					switch {
					case local < 0:
						global[s][u] = radio.Action{Mode: radio.Quiet}
					case local < len(script):
						global[s][u] = script[local][u]
					default:
						global[s][u] = script[len(script)-1][u]
					}
				}
			}
			want := perNode(n, naiveDeliveries(nw, global, nil))
			tl, err := topology.TilingByRadius(nw, radius, 9)
			if err != nil {
				t.Fatal(err)
			}
			protos := make([]SyncProtocol, n)
			scripts := make([]*scriptSync, n)
			for u := 0; u < n; u++ {
				actions := make([]radio.Action, len(script))
				for s := range script {
					actions[s] = script[s][u]
				}
				scripts[u] = &scriptSync{actions: actions}
				protos[u] = scripts[u]
			}
			if _, err := RunSync(SyncConfig{
				Network:       nw,
				Protocols:     protos,
				StartSlots:    starts,
				MaxSlots:      slots,
				RunToMaxSlots: true,
				Tiling:        tl,
				TileWorkers:   2,
			}); err != nil {
				t.Fatal(err)
			}
			got := make([][]refDelivery, n)
			for u, s := range scripts {
				for _, msg := range s.delivered {
					got[u] = append(got[u], refDelivery{from: msg.From, to: topology.NodeID(u)})
				}
			}
			comparePerNode(t, "tiled start slots", got, want)
		})
	}
}

// nonConcurrentStepper wraps a Stepper without declaring ConcurrentByNode,
// modelling a custom stepper that funnels nodes through shared state.
type nonConcurrentStepper struct{ st Stepper }

func (s nonConcurrentStepper) Next(u topology.NodeID, k int) radio.Action { return s.st.Next(u, k) }

// TestSyncTiledFallsBack sweeps every precondition that must force the
// deterministic single-threaded fallback: a loss model, a dynamic world, a
// per-listener observer subscription, a stepper without the concurrency
// marker, and a tiling finer than the connection radius (halo violation).
// In each case the run must succeed, report zero tiled slots, and — where a
// loss-free static baseline exists — match the non-tiled run exactly.
func TestSyncTiledFallsBack(t *testing.T) {
	const maxSlots = 4000
	nw := tiledNet(t, 5, 32, 0.4)
	tl := mustTiling(t, nw, 2, 2)
	base, _ := runTiledSeeded(t, nw, 77, nil, 0, maxSlots)

	t.Run("loss", func(t *testing.T) {
		run := func(tiling *topology.Tiling) (*SyncResult, Internals) {
			loss, err := NewLossModel(0.3, rng.New(9))
			if err != nil {
				t.Fatal(err)
			}
			rec := &InternalsRecorder{}
			res, err := RunSync(SyncConfig{
				Network:   nw,
				Protocols: syncProtos(t, nw, 77),
				MaxSlots:  maxSlots,
				Loss:      loss,
				Tiling:    tiling,
				Observer:  rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, rec.Last
		}
		want, _ := run(nil)
		got, in := run(tl)
		if in.TiledSlots != 0 {
			t.Fatalf("lossy run took the tiled path (%d slots)", in.TiledSlots)
		}
		sameCoverage(t, "lossy fallback", want.Coverage, got.Coverage)
	})

	t.Run("dynamics", func(t *testing.T) {
		run := func(tiling *topology.Tiling) (*SyncResult, Internals) {
			world, err := dynamics.NewWorld(nw, dynamics.Spec{
				EpochLen: 200,
				Churn:    &dynamics.Churn{JoinFraction: 0.3, JoinWindow: 10, LeaveFraction: 0.2, LeaveWindow: 10},
			}, maxSlots/200, rng.New(13))
			if err != nil {
				t.Fatal(err)
			}
			rec := &InternalsRecorder{}
			res, err := RunSync(SyncConfig{
				Network:   nw,
				Protocols: syncProtos(t, nw, 77),
				MaxSlots:  maxSlots,
				Dynamics:  world,
				Tiling:    tiling,
				Observer:  rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, rec.Last
		}
		want, _ := run(nil)
		got, in := run(tl)
		if in.TiledSlots != 0 || in.ScalarSlots != in.SlotsSimulated {
			t.Fatalf("dynamic run path attribution: %+v", in)
		}
		sameCoverage(t, "dynamics fallback", want.Coverage, got.Coverage)
	})

	t.Run("per-listener observer", func(t *testing.T) {
		rec := &InternalsRecorder{}
		res, err := RunSync(SyncConfig{
			Network:   nw,
			Protocols: syncProtos(t, nw, 77),
			MaxSlots:  maxSlots,
			Tiling:    tl,
			Observer:  MultiObserver(rec, ObserverFunc(func(Event) {})),
		})
		if err != nil {
			t.Fatal(err)
		}
		in := rec.Last
		if in.TiledSlots != 0 || in.KernelSlots != in.SlotsSimulated {
			t.Fatalf("full-observer run path attribution: %+v", in)
		}
		sameCoverage(t, "observer fallback", base.Coverage, res.Coverage)
	})

	t.Run("non-concurrent stepper", func(t *testing.T) {
		protos := syncProtos(t, nw, 77)
		rec := &InternalsRecorder{}
		res, err := RunSync(SyncConfig{
			Network:   nw,
			Protocols: protos,
			MaxSlots:  maxSlots,
			Stepper:   nonConcurrentStepper{st: syncStepper{protos: protos}},
			Tiling:    tl,
			Observer:  rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Last.TiledSlots != 0 {
			t.Fatalf("non-concurrent stepper took the tiled path")
		}
		sameCoverage(t, "stepper fallback", base.Coverage, res.Coverage)
	})

	t.Run("halo violation", func(t *testing.T) {
		// An 8×8 grid on a radius-0.4 graph puts candidates outside the 3×3
		// halo; TileMasks refuses and the engine falls back.
		fine := mustTiling(t, nw, 8, 8)
		got, in := runTiledSeeded(t, nw, 77, fine, 0, maxSlots)
		if in.TiledSlots != 0 {
			t.Fatalf("halo-violating tiling took the tiled path")
		}
		sameCoverage(t, "halo fallback", base.Coverage, got.Coverage)
	})
}

// TestSyncTiledInternals pins the tiled path's internals attribution: every
// slot lands on TiledSlots, stepper batches are attributed per (slot, tile
// with active nodes), and a multi-tile run on a connected graph performs
// halo exchanges.
func TestSyncTiledInternals(t *testing.T) {
	nw := tiledNet(t, 11, 48, 0.3)
	tl := mustTiling(t, nw, 3, 3)
	res, in := runTiledSeeded(t, nw, 42, tl, 0, 4000)
	slots := int64(res.SlotsSimulated)
	if in.TiledSlots != slots || in.BatchedSlots != 0 || in.KernelSlots != 0 || in.ScalarSlots != 0 {
		t.Fatalf("path attribution: %+v (slots %d)", in, slots)
	}
	if in.TiledSlots+in.BatchedSlots+in.KernelSlots+in.ScalarSlots != in.SlotsSimulated {
		t.Fatalf("path slots do not sum to SlotsSimulated: %+v", in)
	}
	// Uniform starts: every tile pulls one batch per slot, covering all its
	// nodes, so batches = slots × tiles and batch nodes = slots × n.
	if want := slots * int64(tl.Tiles()); in.StepperBatches != want {
		t.Fatalf("StepperBatches = %d, want %d", in.StepperBatches, want)
	}
	if want := slots * int64(nw.N()); in.StepperBatchNodes != want {
		t.Fatalf("StepperBatchNodes = %d, want %d", in.StepperBatchNodes, want)
	}
	if in.BatchSteps != in.StepperBatches {
		t.Fatalf("BatchSteps = %d with a BatchStepper, want %d", in.BatchSteps, in.StepperBatches)
	}
	if in.MaxStepperBatch <= 0 || in.MaxStepperBatch > int64(nw.N()) {
		t.Fatalf("MaxStepperBatch = %d", in.MaxStepperBatch)
	}
	if in.HaloExchanges <= 0 || in.HaloWordsCopied < in.HaloExchanges {
		t.Fatalf("halo tallies: exchanges %d, words %d", in.HaloExchanges, in.HaloWordsCopied)
	}
	// Single-tile runs have no neighbors to exchange with.
	_, in1 := runTiledSeeded(t, nw, 42, mustTiling(t, nw, 1, 1), 0, 4000)
	if in1.TiledSlots == 0 {
		t.Fatal("single-tile run did not take the tiled path")
	}
	if in1.HaloExchanges != 0 || in1.HaloWordsCopied != 0 {
		t.Fatalf("single-tile halo tallies: %+v", in1)
	}
}

// TestSyncTiledRaceStress drives parallel tiled runs at full worker count —
// the halo-barrier data-race canary for `go test -race ./internal/sim/`.
func TestSyncTiledRaceStress(t *testing.T) {
	nw := tiledNet(t, 3, 96, 0.22)
	tl, err := topology.TilingByRadius(nw, 0.22, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Tiles() < 4 {
		t.Fatalf("stress tiling has only %d tiles", tl.Tiles())
	}
	scratch := NewSyncScratch()
	base, _ := runTiledSeeded(t, nw, 8, nil, 0, 600)
	for i := 0; i < 4; i++ {
		res, err := RunSync(SyncConfig{
			Network:     nw,
			Protocols:   syncProtos(t, nw, 8),
			MaxSlots:    600,
			Tiling:      tl,
			TileWorkers: runtime.GOMAXPROCS(0),
			Scratch:     scratch,
		})
		if err != nil {
			t.Fatal(err)
		}
		sameCoverage(t, fmt.Sprintf("race stress run %d", i), base.Coverage, res.Coverage)
	}
}

// TestSyncTiledSteadyStateAllocs bounds the tiled path's per-run
// allocations on a warm scratch and pins them independent of the slot
// count: the per-slot machinery must live entirely off the per-tile
// scratch, leaving only fixed per-run setup (pool, closures, result,
// coverage, message sets).
func TestSyncTiledSteadyStateAllocs(t *testing.T) {
	r := rng.New(17)
	nw := tiledNet(t, 17, 64, 0.26)
	tl := mustTiling(t, nw, 3, 3)
	// Stateless fixed-action protocols: the measurement isolates the engine
	// from protocol-side discovery-state growth (which scales with coverage,
	// not with the engine's slot machinery).
	protos := make([]SyncProtocol, nw.N())
	for u := range protos {
		c, err := nw.Avail(topology.NodeID(u)).Pick(r)
		if err != nil {
			t.Fatal(err)
		}
		mode := radio.Receive
		if r.Bernoulli(0.4) {
			mode = radio.Transmit
		}
		protos[u] = &sinkSync{act: radio.Action{Mode: mode, Channel: c}}
	}
	scratch := NewSyncScratch()
	run := func(slots int) func() {
		return func() {
			if _, err := RunSync(SyncConfig{
				Network:       nw,
				Protocols:     protos,
				MaxSlots:      slots,
				RunToMaxSlots: true,
				Tiling:        tl,
				TileWorkers:   2,
				Scratch:       scratch,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(64)() // warm the scratch and the per-tile delivery queues
	short := testing.AllocsPerRun(5, run(16))
	long := testing.AllocsPerRun(5, run(64))
	if long > short+8 {
		t.Errorf("tiled path allocates per slot: %.0f allocs at 16 slots, %.0f at 64", short, long)
	}
	if short > 120 {
		t.Errorf("tiled path allocated %.0f objects per scratch-reusing run", short)
	}
}
