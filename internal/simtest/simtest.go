// Package simtest is a conformance testkit for discovery protocols.
//
// Every protocol the engines can drive — the paper's four algorithms, the
// baselines, the termination wrappers, and any future additions — must obey
// the same contract: actions stay inside the node's available channel set,
// behaviour is a deterministic function of the random stream, and message
// delivery grows the neighbor table monotonically and never panics, no
// matter what the message contains. This package checks that contract
// wholesale so each protocol's own test file is freed up for its specific
// semantics.
package simtest

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// Options tune a conformance check.
type Options struct {
	// Steps is the number of slots/frames to drive; 0 means 3000.
	Steps int
	// AllowQuiet permits the protocol to choose Quiet (termination
	// wrappers do; the paper's algorithms never should).
	AllowQuiet bool
}

func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 3000
	}
	return o
}

// SyncBuilder constructs a fresh synchronous protocol instance from a
// random stream.
type SyncBuilder func(r *rng.Source) (core.SyncDiscoverer, error)

// AsyncBuilder constructs a fresh asynchronous protocol instance.
type AsyncBuilder func(r *rng.Source) (core.AsyncDiscoverer, error)

// CheckSync runs the conformance suite against a synchronous protocol.
// avail must be the available set the builder configures its instances with.
func CheckSync(t *testing.T, name string, avail channel.Set, build SyncBuilder, opts Options) {
	t.Helper()
	opts = opts.withDefaults()

	t.Run(name+"/actions-valid", func(t *testing.T) {
		p, err := build(rng.New(101))
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < opts.Steps; slot++ {
			a := p.Step(slot)
			if err := a.Validate(avail); err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
			if a.Mode == radio.Quiet && !opts.AllowQuiet {
				t.Fatalf("slot %d: protocol chose quiet", slot)
			}
		}
	})

	t.Run(name+"/deterministic", func(t *testing.T) {
		p1, err := build(rng.New(202))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := build(rng.New(202))
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < opts.Steps; slot++ {
			if a, b := p1.Step(slot), p2.Step(slot); a != b {
				t.Fatalf("slot %d: same seed diverged: %v vs %v", slot, a, b)
			}
		}
	})

	t.Run(name+"/delivery", func(t *testing.T) {
		p, err := build(rng.New(303))
		if err != nil {
			t.Fatal(err)
		}
		checkDelivery(t, avail, p.Deliver, p.Neighbors)
	})
}

// CheckAsync runs the conformance suite against an asynchronous protocol.
func CheckAsync(t *testing.T, name string, avail channel.Set, build AsyncBuilder, opts Options) {
	t.Helper()
	opts = opts.withDefaults()

	t.Run(name+"/actions-valid", func(t *testing.T) {
		p, err := build(rng.New(111))
		if err != nil {
			t.Fatal(err)
		}
		for frame := 0; frame < opts.Steps; frame++ {
			a := p.NextFrame(frame)
			if err := a.Validate(avail); err != nil {
				t.Fatalf("frame %d: %v", frame, err)
			}
			if a.Mode == radio.Quiet && !opts.AllowQuiet {
				t.Fatalf("frame %d: protocol chose quiet", frame)
			}
		}
	})

	t.Run(name+"/deterministic", func(t *testing.T) {
		p1, err := build(rng.New(222))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := build(rng.New(222))
		if err != nil {
			t.Fatal(err)
		}
		for frame := 0; frame < opts.Steps; frame++ {
			if a, b := p1.NextFrame(frame), p2.NextFrame(frame); a != b {
				t.Fatalf("frame %d: same seed diverged: %v vs %v", frame, a, b)
			}
		}
	})

	t.Run(name+"/delivery", func(t *testing.T) {
		p, err := build(rng.New(333))
		if err != nil {
			t.Fatal(err)
		}
		checkDelivery(t, avail, p.Deliver, p.Neighbors)
	})
}

// checkDelivery feeds adversarial messages and checks table semantics:
// monotone growth, correct intersection, robustness to empty and disjoint
// advertised sets.
func checkDelivery(
	t *testing.T,
	avail channel.Set,
	deliver func(radio.Message),
	table func() *core.NeighborTable,
) {
	t.Helper()
	cases := []radio.Message{
		{From: 1, Avail: avail.Clone()},           // full overlap
		{From: 2, Avail: channel.Set{}},           // empty advertised set
		{From: 3, Avail: channel.NewSet(250)},     // disjoint high channel
		{From: 1, Avail: channel.NewSet(251)},     // re-delivery, different set
		{From: 4, Avail: channel.Range(256)},      // superset
		{From: topology.NodeID(99), Avail: avail}, // aliasing check source
	}
	prevLen := 0
	for i, msg := range cases {
		deliver(msg)
		tbl := table()
		if tbl.Len() < prevLen {
			t.Fatalf("delivery %d shrank the table", i)
		}
		prevLen = tbl.Len()
	}
	tbl := table()
	common, ok := tbl.Common(1)
	if !ok {
		t.Fatal("neighbor 1 missing")
	}
	if !common.Equal(avail) {
		t.Fatalf("neighbor 1 common = %v, want %v (full overlap then union with disjoint)", common, avail)
	}
	if c4, ok := tbl.Common(4); !ok || !c4.Equal(avail) {
		t.Fatalf("superset message: common = %v, want %v", c4, avail)
	}
	// The table must have cloned the message set: mutating our copy must
	// not leak in.
	probe := channel.NewSet(7)
	deliver(radio.Message{From: 55, Avail: probe})
	probe.Add(200)
	if c, _ := table().Common(55); c.Contains(200) {
		t.Fatal("table aliased the delivered set")
	}
}
