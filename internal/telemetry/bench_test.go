package telemetry

import (
	"testing"

	"m2hew/internal/radio"
	"m2hew/internal/sim"
)

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h, err := NewHistogram(ExponentialBounds(1, 2, 14))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func BenchmarkRunObserverOnEvent(b *testing.B) {
	o := NewRunObserver(30, 8, nil)
	actions := make([]radio.Action, 30)
	for u := range actions {
		switch u % 3 {
		case 0:
			actions[u] = radio.Action{Mode: radio.Transmit, Channel: 0}
		case 1:
			actions[u] = radio.Action{Mode: radio.Receive, Channel: 0}
		default:
			actions[u] = radio.Action{Mode: radio.Quiet}
		}
	}
	events := []sim.Event{
		{Kind: sim.EventSlot, Slot: 1, Actions: actions},
		{Kind: sim.EventDeliver, Time: 1, From: 0, To: 1, Channel: 0},
		{Kind: sim.EventCollision, Time: 1, From: 0, To: 4, Channel: 0},
		{Kind: sim.EventIdle, Time: 1, To: 7, Channel: 3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.OnEvent(events[i&3])
	}
}
