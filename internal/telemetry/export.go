package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry snapshot in the Prometheus text
// exposition format (one HELP/TYPE header per metric name, cumulative
// _bucket/_sum/_count series for histograms). Output order follows
// Registry.Snapshot — sorted, deterministic.
func WritePrometheus(w io.Writer, r *Registry) error {
	var lastName string
	for _, m := range r.Snapshot() {
		if m.Name != lastName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		if m.Histogram == nil {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(m.Labels, "", ""), promFloat(m.Value)); err != nil {
				return err
			}
			continue
		}
		h := m.Histogram
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := promFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(m.Labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(m.Labels, "le", "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(m.Labels, "", ""), promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels, "", ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders {k="v",…}, optionally appending one extra pair
// (the histogram le bound); empty when there is nothing to render.
func promLabels(labels []Label, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promFloat formats a sample value: integers without an exponent, the
// rest via %g.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteNDJSON writes the registry snapshot as NDJSON, one MetricSnapshot
// object per line, in the same deterministic order as WritePrometheus.
// This is the `-metrics` file format consumed by jq and the analysis
// notebooks.
func WriteNDJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// Var wraps a registry as an expvar.Var whose String() is the JSON
// snapshot array — usable with expvar.Publish for /debug/vars scraping.
type Var struct {
	r *Registry
}

// NewVar wraps r for expvar publication.
func NewVar(r *Registry) Var { return Var{r: r} }

// String implements expvar.Var.
func (v Var) String() string {
	b, err := json.Marshal(v.r.Snapshot())
	if err != nil {
		// Snapshot marshals plain structs; this cannot fail in practice.
		return "null"
	}
	return string(b)
}

// PublishExpvar publishes the registry under name in the process-wide
// expvar namespace, replacing nothing: if the name is already taken
// (tests re-wiring telemetry, double initialization) it is left as-is and
// false is returned, since expvar.Publish panics on duplicates.
func PublishExpvar(name string, r *Registry) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, NewVar(r))
	return true
}
