package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func exportRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("nd_demo_total", "a demo counter")
	c.Add(3)
	g := r.Gauge("nd_share", "a demo gauge", Label{Key: "channel", Value: "0"})
	g.Set(0.25)
	h := r.Histogram("nd_lat", "a demo histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, exportRegistry(t)); err != nil {
		t.Fatal(err)
	}
	want := `# HELP nd_demo_total a demo counter
# TYPE nd_demo_total counter
nd_demo_total 3
# HELP nd_lat a demo histogram
# TYPE nd_lat histogram
nd_lat_bucket{le="1"} 1
nd_lat_bucket{le="2"} 2
nd_lat_bucket{le="+Inf"} 3
nd_lat_sum 11
nd_lat_count 3
# HELP nd_share a demo gauge
# TYPE nd_share gauge
nd_share{channel="0"} 0.25
`
	if got := sb.String(); got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromEscape(t *testing.T) {
	if got := promEscape("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escape = %q", got)
	}
	if got := promEscape("plain"); got != "plain" {
		t.Fatalf("escape = %q", got)
	}
}

func TestWriteNDJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteNDJSON(&sb, exportRegistry(t)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	var m MetricSnapshot
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "nd_demo_total" || m.Kind != "counter" || m.Value != 3 {
		t.Fatalf("first metric = %+v", m)
	}
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "nd_lat" || m.Histogram == nil || m.Histogram.Count != 3 {
		t.Fatalf("second metric = %+v", m)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := exportRegistry(t)
	if !PublishExpvar("telemetry_test_metrics", r) {
		t.Fatal("first publish refused")
	}
	if PublishExpvar("telemetry_test_metrics", r) {
		t.Fatal("duplicate publish accepted")
	}
	s := NewVar(r).String()
	if !strings.Contains(s, "nd_demo_total") {
		t.Fatalf("expvar string missing metric: %s", s)
	}
	var snaps []MetricSnapshot
	if err := json.Unmarshal([]byte(s), &snaps); err != nil {
		t.Fatalf("expvar string is not valid JSON: %v", err)
	}
}
