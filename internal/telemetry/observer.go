package telemetry

import (
	"math"
	"sync"
	"time"

	"m2hew/internal/radio"
	"m2hew/internal/sim"
)

// DefaultLatencyBounds is the discovery-latency bucket ladder: powers of
// two from 1 to 8192, in the run's native time unit (slots for the
// synchronous engine, real time units for the asynchronous ones).
var DefaultLatencyBounds = ExponentialBounds(1, 2, 14)

// DefaultTimingBounds is the trial wall-time / queue-delay bucket ladder,
// in seconds.
var DefaultTimingBounds = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30,
}

// RunObserver derives one run's telemetry series from the engine event
// stream. It implements sim.Observer, is owned by a single engine
// goroutine (create one per run or trial), and allocates nothing per
// event: every tally is a plain field or fixed slice indexed by node or
// channel ID. Merge finished runs into a shared Aggregate with
// Aggregate.TrialDone, or read them directly with Stats.
type RunObserver struct {
	nodes    int
	channels int

	slots         int64
	frames        int64
	transmissions int64
	collisions    int64
	idle          int64
	deliveries    int64
	duplicates    int64
	frameTxSlots  int64 // transmission slots heard by resolved listening frames
	frameResolved int64 // deliveries resolved by listening frames
	mismatched    int64 // events with out-of-range node or channel IDs
	epochs        int64 // dynamic-run epoch boundaries
	joins         int64 // nodes joining at epoch boundaries
	leaves        int64 // nodes leaving at epoch boundaries
	channelLosses int64 // channels lost to primary users at epoch boundaries

	channelTx []int64 // transmissions per channel ID

	internals sim.Internals // engine-internals report (sync engine)

	latBounds  []float64  // shared, immutable
	latBuckets [][]uint64 // per receiving node: len(latBounds)+1
	latSum     []float64  // per receiving node
	seen       []bool     // nodes*nodes link bitmap for duplicate detection
}

// NewRunObserver sizes an observer for a network with the given node count
// and channel ID space (max channel ID + 1). Discovery latencies land in
// latencyBounds buckets; nil means DefaultLatencyBounds.
func NewRunObserver(nodes, channels int, latencyBounds []float64) *RunObserver {
	if nodes < 0 {
		nodes = 0
	}
	if channels < 0 {
		channels = 0
	}
	if latencyBounds == nil {
		latencyBounds = DefaultLatencyBounds
	}
	o := &RunObserver{
		nodes:      nodes,
		channels:   channels,
		channelTx:  make([]int64, channels),
		latBounds:  latencyBounds,
		latBuckets: make([][]uint64, nodes),
		latSum:     make([]float64, nodes),
		seen:       make([]bool, nodes*nodes),
	}
	for u := range o.latBuckets {
		o.latBuckets[u] = make([]uint64, len(latencyBounds)+1)
	}
	return o
}

// OnEvent implements sim.Observer.
//
//nd:hotpath
func (o *RunObserver) OnEvent(e sim.Event) {
	switch e.Kind {
	case sim.EventSlot:
		o.slots++
		for _, a := range e.Actions {
			if a.Mode != radio.Transmit {
				continue
			}
			o.countTx(int(a.Channel))
		}
	case sim.EventDeliver:
		o.deliveries++
		from, to := int(e.From), int(e.To)
		if from < 0 || from >= o.nodes || to < 0 || to >= o.nodes {
			o.mismatched++
			return
		}
		link := from*o.nodes + to
		if o.seen[link] {
			// A re-delivery of an already-covered link: the engine-level
			// analog of the neighbor-table records core.Record suppresses
			// as duplicates.
			o.duplicates++
			return
		}
		o.seen[link] = true
		o.observeLatency(to, e.Time)
	case sim.EventCollision:
		o.collisions++
	case sim.EventIdle:
		o.idle++
	case sim.EventFrameStart:
		o.frames++
		if e.Action.Mode == radio.Transmit {
			o.countTx(int(e.Action.Channel))
		}
	case sim.EventFrameResolve:
		o.frameTxSlots += int64(e.Collected)
		o.frameResolved += int64(e.Delivered)
	case sim.EventEpoch:
		o.epochs++
	case sim.EventJoin:
		o.joins++
	case sim.EventLeave:
		o.leaves++
	case sim.EventChannelLoss:
		o.channelLosses++
	}
}

// OnInternals implements sim.InternalsSink: the engine's once-per-run
// internals report (resolver path, stepper batching, scratch table reuse)
// is retained for Stats and the Aggregate merge. Attaching a RunObserver
// subscribes to every event kind, so the report will attribute the run's
// slots to the kernel (or scalar) path — the path that actually executed
// under observation; see sim/internals.go.
func (o *RunObserver) OnInternals(in sim.Internals) {
	o.internals.Merge(in)
}

//nd:hotpath
func (o *RunObserver) countTx(ch int) {
	o.transmissions++
	if ch < 0 || ch >= len(o.channelTx) {
		o.mismatched++
		return
	}
	o.channelTx[ch]++
}

//nd:hotpath
func (o *RunObserver) observeLatency(node int, t float64) {
	b := o.latBuckets[node]
	lo, hi := 0, len(o.latBounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.latBounds[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b[lo]++
	o.latSum[node] += t
}

// RunStats is a copy of one run's derived series.
type RunStats struct {
	// Slots counts synchronous slots; Frames counts asynchronous local
	// frames (one of the two is zero for any given engine).
	Slots  int64 `json:"slots"`
	Frames int64 `json:"frames"`
	// Transmissions counts transmit decisions: transmit slots
	// (synchronous) or transmit frames (asynchronous).
	Transmissions int64 `json:"transmissions"`
	// Collisions counts synchronous listening slots destroyed by
	// interference; IdleListens counts synchronous listening slots that
	// heard nothing at all.
	Collisions  int64 `json:"collisions"`
	IdleListens int64 `json:"idleListens"`
	// Deliveries counts clear receptions; Duplicates is the subset that
	// re-covered an already-covered link (duplicate-suppressed records).
	Deliveries int64 `json:"deliveries"`
	Duplicates int64 `json:"duplicates"`
	// FrameTxSlots / FrameDeliveries aggregate the asynchronous resolver's
	// per-listening-frame accounting: transmission slots heard, deliveries
	// resolved.
	FrameTxSlots    int64 `json:"frameTxSlots"`
	FrameDeliveries int64 `json:"frameDeliveries"`
	// Mismatched counts events whose node or channel IDs fell outside the
	// observer's sizing — always 0 when the observer was sized from the
	// run's own network.
	Mismatched int64 `json:"mismatched"`
	// Epochs, Joins, Leaves and ChannelLosses tally a dynamic run's epoch
	// boundaries and their membership/spectrum flips; all zero for static
	// runs.
	Epochs        int64 `json:"epochs,omitempty"`
	Joins         int64 `json:"joins,omitempty"`
	Leaves        int64 `json:"leaves,omitempty"`
	ChannelLosses int64 `json:"channelLosses,omitempty"`
	// Internals is the synchronous engine's internals report (resolver-path
	// slot attribution, stepper batch sizes, scratch table reuse); the zero
	// value for asynchronous runs.
	Internals sim.Internals `json:"internals,omitempty"`
	// ChannelTx is Transmissions split by channel ID.
	ChannelTx []int64 `json:"channelTx"`
	// NodeLatency holds one discovery-latency histogram per receiving
	// node: the Time of each first coverage of an inbound link.
	NodeLatency []HistogramSnapshot `json:"nodeLatency"`
}

// Utilization returns per-channel offered load: transmissions on the
// channel divided by the number of time units simulated (slots for
// synchronous runs, frames for asynchronous runs). Values above 1 mean
// more than one node transmitted per unit on average.
func (s RunStats) Utilization() []float64 {
	units := s.Slots + s.Frames
	if units == 0 {
		return make([]float64, len(s.ChannelTx))
	}
	out := make([]float64, len(s.ChannelTx))
	for c, n := range s.ChannelTx {
		out[c] = float64(n) / float64(units)
	}
	return out
}

// Stats copies the observer's current series.
func (o *RunObserver) Stats() RunStats {
	s := RunStats{
		Slots:           o.slots,
		Frames:          o.frames,
		Transmissions:   o.transmissions,
		Collisions:      o.collisions,
		IdleListens:     o.idle,
		Deliveries:      o.deliveries,
		Duplicates:      o.duplicates,
		FrameTxSlots:    o.frameTxSlots,
		FrameDeliveries: o.frameResolved,
		Mismatched:      o.mismatched,
		Epochs:          o.epochs,
		Joins:           o.joins,
		Leaves:          o.leaves,
		ChannelLosses:   o.channelLosses,
		Internals:       o.internals,
		ChannelTx:       append([]int64(nil), o.channelTx...),
		NodeLatency:     make([]HistogramSnapshot, o.nodes),
	}
	for u := 0; u < o.nodes; u++ {
		var count uint64
		for _, c := range o.latBuckets[u] {
			count += c
		}
		s.NodeLatency[u] = HistogramSnapshot{
			Bounds: o.latBounds,
			Counts: append([]uint64(nil), o.latBuckets[u]...),
			Count:  count,
			Sum:    o.latSum[u],
		}
	}
	return s
}

// Aggregate merges RunObserver series across concurrent trials into a
// Registry and implements the harness's Instrument seam. All methods are
// safe for concurrent use from the trial pool; the flush path (TrialDone)
// touches a mutex only to grow lazily-registered per-channel counters and
// per-node histograms, never per event.
type Aggregate struct {
	reg *Registry

	trials          *Counter
	slots           *Counter
	frames          *Counter
	transmissions   *Counter
	collisions      *Counter
	idle            *Counter
	deliveries      *Counter
	duplicates      *Counter
	frameTxSlots    *Counter
	frameDeliveries *Counter
	mismatched      *Counter
	epochs          *Counter
	joins           *Counter
	leaves          *Counter
	channelLosses   *Counter
	latency         *Histogram

	// Engine-internals series (sim.Internals; sync engine only).
	tiledSlots      *Counter
	haloExchanges   *Counter
	haloWords       *Counter
	batchedSlots    *Counter
	kernelSlots     *Counter
	scalarSlots     *Counter
	maskOverruns    *Counter
	stepperBatches  *Counter
	stepperNodes    *Counter
	batchSteps      *Counter
	scratchHits     *Counter
	scratchMisses   *Counter
	maxStepperBatch *Gauge

	queueDelay *Histogram
	wall       *Histogram

	latBounds []float64

	mu         sync.Mutex
	channelTx  []*Counter   // lazily grown to the widest network seen
	perNode    []*Histogram // lazily grown, only when perNodeMax > 0
	perNodeMax int
}

// AggregateOption configures NewAggregate.
type AggregateOption func(*Aggregate)

// PerNodeLatency also exports one nd_node_discovery_latency{node=…}
// histogram per node ID up to max. Off by default: per-node series are
// meaningful for a fixed scenario (cmd/ndperf), not when trials span
// networks of different sizes (cmd/ndbench -all).
func PerNodeLatency(max int) AggregateOption {
	return func(a *Aggregate) { a.perNodeMax = max }
}

// LatencyBounds overrides DefaultLatencyBounds for the discovery-latency
// histograms.
func LatencyBounds(bounds []float64) AggregateOption {
	return func(a *Aggregate) { a.latBounds = bounds }
}

// NewAggregate registers the run-telemetry metric set in reg and returns
// the aggregate that feeds it.
func NewAggregate(reg *Registry, opts ...AggregateOption) *Aggregate {
	a := &Aggregate{reg: reg, latBounds: DefaultLatencyBounds}
	for _, opt := range opts {
		opt(a)
	}
	a.trials = reg.Counter("nd_trials_total", "engine runs merged into this aggregate")
	a.slots = reg.Counter("nd_slots_total", "synchronous slots simulated")
	a.frames = reg.Counter("nd_frames_total", "asynchronous local frames simulated")
	a.transmissions = reg.Counter("nd_transmissions_total", "transmit decisions (slots or frames)")
	a.collisions = reg.Counter("nd_collisions_total", "synchronous listening slots destroyed by interference")
	a.idle = reg.Counter("nd_idle_listens_total", "synchronous listening slots that heard nothing")
	a.deliveries = reg.Counter("nd_deliveries_total", "clear receptions")
	a.duplicates = reg.Counter("nd_duplicates_total", "re-deliveries of already-covered links (duplicate-suppressed records)")
	a.frameTxSlots = reg.Counter("nd_frame_tx_slots_total", "transmission slots heard by resolved listening frames")
	a.frameDeliveries = reg.Counter("nd_frame_deliveries_total", "deliveries resolved by listening frames")
	a.mismatched = reg.Counter("nd_mismatched_events_total", "events with out-of-range node or channel IDs")
	a.epochs = reg.Counter("nd_epochs_total", "dynamic-run epoch boundaries crossed")
	a.joins = reg.Counter("nd_joins_total", "nodes joining the network at epoch boundaries")
	a.leaves = reg.Counter("nd_leaves_total", "nodes leaving the network at epoch boundaries")
	a.channelLosses = reg.Counter("nd_channel_losses_total", "channels vacated to primary users at epoch boundaries")
	a.tiledSlots = reg.Counter("nd_resolver_tiled_slots_total", "sync slots resolved on the tiled parallel path")
	a.haloExchanges = reg.Counter("nd_halo_exchanges_total", "tiled-path halo segment copies from neighbor tiles")
	a.haloWords = reg.Counter("nd_halo_words_copied_total", "words copied across tile halos")
	a.batchedSlots = reg.Counter("nd_resolver_batched_slots_total", "sync slots resolved on the channel-major batched path")
	a.kernelSlots = reg.Counter("nd_resolver_kernel_slots_total", "sync slots resolved on the listener-major kernel path")
	a.scalarSlots = reg.Counter("nd_resolver_scalar_slots_total", "sync slots resolved on the scalar candidate-scan path")
	a.maskOverruns = reg.Counter("nd_mask_budget_overruns_total", "static sync runs whose candidate-mask table exceeded its word budget")
	a.stepperBatches = reg.Counter("nd_stepper_batches_total", "sync decision-pull batches (one per slot)")
	a.stepperNodes = reg.Counter("nd_stepper_batch_nodes_total", "decisions pulled across all sync stepper batches")
	a.batchSteps = reg.Counter("nd_stepper_batch_calls_total", "stepper batches served by a single NextBatch call")
	a.scratchHits = reg.Counter("nd_scratch_table_hits_total", "sync runs that reused the scratch's cached network tables")
	a.scratchMisses = reg.Counter("nd_scratch_table_misses_total", "sync runs that rebuilt the scratch's network tables")
	a.maxStepperBatch = reg.Gauge("nd_stepper_batch_max", "largest single sync stepper batch seen")
	a.latency = reg.Histogram("nd_discovery_latency", "first-coverage instants of discoverable links (slots or real time)", a.latBounds)
	a.queueDelay = reg.Histogram("nd_trial_queue_seconds", "delay between harness run start and trial pickup", DefaultTimingBounds)
	a.wall = reg.Histogram("nd_trial_wall_seconds", "per-trial wall time on the harness pool", DefaultTimingBounds)
	return a
}

// TrialObserver returns a fresh per-run observer sized for a network with
// the given node count and channel ID space. It is the harness Instrument
// hook; pair every observer with one TrialDone call.
func (a *Aggregate) TrialObserver(nodes, channels int) sim.Observer {
	return NewRunObserver(nodes, channels, a.latBounds)
}

// TrialDone merges a finished trial's series into the aggregate. Observers
// not created by TrialObserver (including nil) are ignored, so the harness
// can call it unconditionally.
func (a *Aggregate) TrialDone(obs sim.Observer) {
	o, ok := obs.(*RunObserver)
	if !ok || o == nil {
		return
	}
	a.trials.Inc()
	a.slots.Add(o.slots)
	a.frames.Add(o.frames)
	a.transmissions.Add(o.transmissions)
	a.collisions.Add(o.collisions)
	a.idle.Add(o.idle)
	a.deliveries.Add(o.deliveries)
	a.duplicates.Add(o.duplicates)
	a.frameTxSlots.Add(o.frameTxSlots)
	a.frameDeliveries.Add(o.frameResolved)
	a.mismatched.Add(o.mismatched)
	a.epochs.Add(o.epochs)
	a.joins.Add(o.joins)
	a.leaves.Add(o.leaves)
	a.channelLosses.Add(o.channelLosses)
	a.tiledSlots.Add(o.internals.TiledSlots)
	a.haloExchanges.Add(o.internals.HaloExchanges)
	a.haloWords.Add(o.internals.HaloWordsCopied)
	a.batchedSlots.Add(o.internals.BatchedSlots)
	a.kernelSlots.Add(o.internals.KernelSlots)
	a.scalarSlots.Add(o.internals.ScalarSlots)
	a.maskOverruns.Add(o.internals.MaskBudgetOverruns)
	a.stepperBatches.Add(o.internals.StepperBatches)
	a.stepperNodes.Add(o.internals.StepperBatchNodes)
	a.batchSteps.Add(o.internals.BatchSteps)
	a.scratchHits.Add(o.internals.ScratchTableHits)
	a.scratchMisses.Add(o.internals.ScratchTableMisses)

	for u := 0; u < o.nodes; u++ {
		a.latency.merge(o.latBuckets[u], o.latSum[u])
	}

	a.mu.Lock()
	if m := float64(o.internals.MaxStepperBatch); m > a.maxStepperBatch.Value() {
		a.maxStepperBatch.Set(m)
	}
	for len(a.channelTx) < len(o.channelTx) {
		c := len(a.channelTx)
		a.channelTx = append(a.channelTx, a.reg.Counter(
			"nd_channel_tx_total", "transmissions per channel",
			Label{Key: "channel", Value: itoa(c)}))
	}
	for a.perNodeMax > 0 && len(a.perNode) < min(o.nodes, a.perNodeMax) {
		u := len(a.perNode)
		a.perNode = append(a.perNode, a.reg.Histogram(
			"nd_node_discovery_latency", "per-node first-coverage instants of inbound links",
			a.latBounds, Label{Key: "node", Value: itoa(u)}))
	}
	channelTx := a.channelTx
	perNode := a.perNode
	a.mu.Unlock()

	for c, n := range o.channelTx {
		channelTx[c].Add(n)
	}
	for u := 0; u < o.nodes && u < len(perNode); u++ {
		perNode[u].merge(o.latBuckets[u], o.latSum[u])
	}
}

// ObserveRun records one harness work item's queue delay and wall time.
func (a *Aggregate) ObserveRun(index int, queueDelay, wall time.Duration) {
	_ = index
	a.queueDelay.Observe(queueDelay.Seconds())
	a.wall.Observe(wall.Seconds())
}

// UpdateDerived refreshes the derived gauges — currently
// nd_channel_tx_share{channel=…}, each channel's share of all
// transmissions. Call it after the runs finish, before exporting.
func (a *Aggregate) UpdateDerived() {
	a.mu.Lock()
	channelTx := append([]*Counter(nil), a.channelTx...)
	a.mu.Unlock()
	var total int64
	for _, c := range channelTx {
		total += c.Value()
	}
	for i, c := range channelTx {
		g := a.reg.Gauge("nd_channel_tx_share", "share of all transmissions on this channel",
			Label{Key: "channel", Value: itoa(i)})
		if total == 0 {
			g.Set(0)
			continue
		}
		g.Set(float64(c.Value()) / float64(total))
	}
}

// merge folds per-run plain buckets into an atomic histogram. The buckets
// must have been built against the same bounds.
//
//nd:hotpath
func (h *Histogram) merge(counts []uint64, sum float64) {
	if len(counts) != len(h.buckets) {
		// Mis-sized merge would silently misattribute latency mass;
		// sized-by-constructor callers can never hit this.
		panic("telemetry: histogram merge with mismatched bucket count")
	}
	var total uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		h.buckets[i].Add(c)
		total += c
	}
	if total == 0 {
		return
	}
	h.count.Add(total)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// itoa is a tiny allocation-conscious strconv.Itoa for small non-negative
// label values (cold path, but keeps the dependency surface minimal).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
