package telemetry

import (
	"sync"
	"testing"
	"time"

	"m2hew/internal/harness"
	"m2hew/internal/radio"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// The harness knows telemetry only through its Instrument seam; this is
// the one place the two are pinned together.
var _ harness.Instrument = (*Aggregate)(nil)

func TestRunObserverSyncSeries(t *testing.T) {
	o := NewRunObserver(3, 2, nil)
	actions := []radio.Action{
		{Mode: radio.Transmit, Channel: 0},
		{Mode: radio.Receive, Channel: 0},
		{Mode: radio.Transmit, Channel: 1},
	}
	o.OnEvent(sim.Event{Kind: sim.EventSlot, Slot: 0, Actions: actions})
	o.OnEvent(sim.Event{Kind: sim.EventDeliver, Time: 0, From: 0, To: 1, Channel: 0})
	o.OnEvent(sim.Event{Kind: sim.EventCollision, Time: 1, From: 0, To: 1, Channel: 0})
	o.OnEvent(sim.Event{Kind: sim.EventIdle, Time: 2, To: 1, Channel: 0})
	// Same link again: a duplicate, no second latency sample.
	o.OnEvent(sim.Event{Kind: sim.EventDeliver, Time: 3, From: 0, To: 1, Channel: 0})

	s := o.Stats()
	if s.Slots != 1 || s.Transmissions != 2 || s.Collisions != 1 || s.IdleListens != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Deliveries != 2 || s.Duplicates != 1 {
		t.Fatalf("deliveries/duplicates = %d/%d, want 2/1", s.Deliveries, s.Duplicates)
	}
	if s.ChannelTx[0] != 1 || s.ChannelTx[1] != 1 {
		t.Fatalf("channelTx = %v", s.ChannelTx)
	}
	if s.NodeLatency[1].Count != 1 || s.NodeLatency[0].Count != 0 {
		t.Fatalf("latency counts = %d/%d", s.NodeLatency[1].Count, s.NodeLatency[0].Count)
	}
	if s.Mismatched != 0 {
		t.Fatalf("mismatched = %d", s.Mismatched)
	}
}

func TestRunObserverFrameSeries(t *testing.T) {
	o := NewRunObserver(2, 2, nil)
	o.OnEvent(sim.Event{Kind: sim.EventFrameStart, Node: 0, Slot: 0,
		Action: radio.Action{Mode: radio.Transmit, Channel: 1}})
	o.OnEvent(sim.Event{Kind: sim.EventFrameStart, Node: 1, Slot: 0,
		Action: radio.Action{Mode: radio.Receive, Channel: 1}})
	o.OnEvent(sim.Event{Kind: sim.EventFrameResolve, Node: 1, Slot: 0,
		Action: radio.Action{Mode: radio.Receive, Channel: 1}, Collected: 3, Delivered: 1})

	s := o.Stats()
	if s.Frames != 2 || s.Transmissions != 1 || s.ChannelTx[1] != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.FrameTxSlots != 3 || s.FrameDeliveries != 1 {
		t.Fatalf("frame accounting = %d/%d, want 3/1", s.FrameTxSlots, s.FrameDeliveries)
	}
}

func TestRunObserverMismatched(t *testing.T) {
	o := NewRunObserver(2, 1, nil)
	o.OnEvent(sim.Event{Kind: sim.EventSlot, Actions: []radio.Action{
		{Mode: radio.Transmit, Channel: 5}, // out-of-range channel
	}})
	o.OnEvent(sim.Event{Kind: sim.EventDeliver, From: 7, To: 1}) // out-of-range node
	s := o.Stats()
	if s.Mismatched != 2 {
		t.Fatalf("mismatched = %d, want 2", s.Mismatched)
	}
	// The delivery still counted; the latency sample was dropped.
	if s.Deliveries != 1 || s.Transmissions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRunStatsUtilization(t *testing.T) {
	s := RunStats{Slots: 4, ChannelTx: []int64{2, 0, 6}}
	u := s.Utilization()
	want := []float64{0.5, 0, 1.5}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("utilization = %v, want %v", u, want)
		}
	}
	if u := (RunStats{ChannelTx: []int64{3}}).Utilization(); u[0] != 0 {
		t.Fatalf("zero-unit utilization = %v, want 0", u[0])
	}
}

// TestRunObserverAgainstEngine hand-checks a 2-node scenario end to end:
// nodes 0,1 are mutual neighbors on one channel; node 0 always transmits,
// node 1 always listens. Slot 0 delivers link 0→1; every later slot is a
// duplicate; node 0 never hears anything (it never listens).
func TestRunObserverAgainstEngine(t *testing.T) {
	nw, err := topology.Pair()
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	o := NewRunObserver(2, 1, nil)
	const slots = 4
	_, err = sim.RunSync(sim.SyncConfig{
		Network: nw,
		Protocols: []sim.SyncProtocol{
			fixedProto{radio.Action{Mode: radio.Transmit, Channel: 0}},
			fixedProto{radio.Action{Mode: radio.Receive, Channel: 0}},
		},
		MaxSlots:      slots,
		RunToMaxSlots: true,
		Observer:      o,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := o.Stats()
	if s.Slots != slots || s.Transmissions != slots {
		t.Fatalf("slots/tx = %d/%d, want %d/%d", s.Slots, s.Transmissions, slots, slots)
	}
	if s.Deliveries != slots || s.Duplicates != slots-1 {
		t.Fatalf("deliveries/duplicates = %d/%d, want %d/%d", s.Deliveries, s.Duplicates, slots, slots-1)
	}
	if s.Collisions != 0 || s.IdleListens != 0 {
		t.Fatalf("collisions/idle = %d/%d, want 0/0", s.Collisions, s.IdleListens)
	}
	if s.NodeLatency[1].Count != 1 || s.NodeLatency[1].Sum != 0 {
		t.Fatalf("node 1 latency: count=%d sum=%v, want one sample at t=0",
			s.NodeLatency[1].Count, s.NodeLatency[1].Sum)
	}
}

type fixedProto struct{ a radio.Action }

func (p fixedProto) Step(int) radio.Action      { return p.a }
func (p fixedProto) Deliver(msg radio.Message)  {}
func (p fixedProto) NextFrame(int) radio.Action { return p.a }

func findMetric(t *testing.T, snap []MetricSnapshot, key string) MetricSnapshot {
	t.Helper()
	for _, m := range snap {
		if metricKey(m.Name, m.Labels) == key {
			return m
		}
	}
	t.Fatalf("metric %q not in snapshot", key)
	return MetricSnapshot{}
}

func TestAggregateFlush(t *testing.T) {
	reg := NewRegistry()
	agg := NewAggregate(reg, PerNodeLatency(4))

	obs := agg.TrialObserver(2, 2)
	o, ok := obs.(*RunObserver)
	if !ok {
		t.Fatalf("TrialObserver returned %T", obs)
	}
	o.OnEvent(sim.Event{Kind: sim.EventSlot, Actions: []radio.Action{
		{Mode: radio.Transmit, Channel: 1},
		{Mode: radio.Receive, Channel: 1},
	}})
	o.OnEvent(sim.Event{Kind: sim.EventDeliver, Time: 5, From: 0, To: 1, Channel: 1})
	agg.TrialDone(o)
	agg.TrialDone(nil) // tolerated: merges nothing
	agg.ObserveRun(0, 2*time.Millisecond, 30*time.Millisecond)
	agg.UpdateDerived()

	snap := reg.Snapshot()
	if v := findMetric(t, snap, "nd_trials_total").Value; v != 1 {
		t.Errorf("trials = %v", v)
	}
	if v := findMetric(t, snap, "nd_slots_total").Value; v != 1 {
		t.Errorf("slots = %v", v)
	}
	if v := findMetric(t, snap, "nd_deliveries_total").Value; v != 1 {
		t.Errorf("deliveries = %v", v)
	}
	if v := findMetric(t, snap, "nd_channel_tx_total{channel=1}").Value; v != 1 {
		t.Errorf("channel 1 tx = %v", v)
	}
	if v := findMetric(t, snap, "nd_channel_tx_share{channel=1}").Value; v != 1 {
		t.Errorf("channel 1 share = %v", v)
	}
	lat := findMetric(t, snap, "nd_discovery_latency").Histogram
	if lat == nil || lat.Count != 1 || lat.Sum != 5 {
		t.Errorf("latency histogram = %+v", lat)
	}
	nodeLat := findMetric(t, snap, "nd_node_discovery_latency{node=1}").Histogram
	if nodeLat == nil || nodeLat.Count != 1 {
		t.Errorf("node 1 latency histogram = %+v", nodeLat)
	}
	wall := findMetric(t, snap, "nd_trial_wall_seconds").Histogram
	if wall == nil || wall.Count != 1 {
		t.Errorf("wall histogram = %+v", wall)
	}
	queue := findMetric(t, snap, "nd_trial_queue_seconds").Histogram
	if queue == nil || queue.Count != 1 {
		t.Errorf("queue histogram = %+v", queue)
	}
}

// TestAggregateInternalsCounters: engine-internals reports delivered to a
// trial's RunObserver land in the registry's nd_resolver_* / nd_stepper_* /
// nd_scratch_* series on TrialDone, summing across trials with the max
// gauge taking the largest batch seen.
func TestAggregateInternalsCounters(t *testing.T) {
	reg := NewRegistry()
	agg := NewAggregate(reg)

	o1 := agg.TrialObserver(4, 2).(*RunObserver)
	o1.OnInternals(sim.Internals{
		SlotsSimulated: 100, BatchedSlots: 100,
		StepperBatches: 100, StepperBatchNodes: 400, MaxStepperBatch: 7,
		BatchSteps: 100, ScratchTableMisses: 1,
	})
	agg.TrialDone(o1)

	o2 := agg.TrialObserver(4, 2).(*RunObserver)
	o2.OnInternals(sim.Internals{
		SlotsSimulated: 50, KernelSlots: 50, MaskBudgetOverruns: 1,
		StepperBatches: 50, StepperBatchNodes: 90, MaxStepperBatch: 3,
		ScratchTableHits: 1,
	})
	agg.TrialDone(o2)

	o3 := agg.TrialObserver(4, 2).(*RunObserver)
	o3.OnInternals(sim.Internals{
		SlotsSimulated: 40, TiledSlots: 40,
		HaloExchanges: 12, HaloWordsCopied: 96,
		StepperBatches: 160, StepperBatchNodes: 640, MaxStepperBatch: 4,
		BatchSteps: 160, ScratchTableHits: 1,
	})
	agg.TrialDone(o3)

	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"nd_resolver_tiled_slots_total":   40,
		"nd_halo_exchanges_total":         12,
		"nd_halo_words_copied_total":      96,
		"nd_resolver_batched_slots_total": 100,
		"nd_resolver_kernel_slots_total":  50,
		"nd_resolver_scalar_slots_total":  0,
		"nd_mask_budget_overruns_total":   1,
		"nd_stepper_batches_total":        310,
		"nd_stepper_batch_nodes_total":    1130,
		"nd_stepper_batch_calls_total":    260,
		"nd_scratch_table_hits_total":     2,
		"nd_scratch_table_misses_total":   1,
		"nd_stepper_batch_max":            7, // max across trials, not sum
	} {
		if v := findMetric(t, snap, name).Value; v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}

func TestAggregateConcurrentTrials(t *testing.T) {
	reg := NewRegistry()
	agg := NewAggregate(reg, PerNodeLatency(8))
	const workers, trialsPer = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < trialsPer; i++ {
				// Vary sizes so lazy channel/node growth races are exercised.
				nodes := 2 + (w+i)%3
				channels := 1 + (w+i)%4
				obs := agg.TrialObserver(nodes, channels)
				o := obs.(*RunObserver)
				o.OnEvent(sim.Event{Kind: sim.EventDeliver, Time: 1, From: 0, To: 1})
				agg.TrialDone(o)
				agg.ObserveRun(i, time.Microsecond, time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if v := findMetric(t, snap, "nd_trials_total").Value; v != workers*trialsPer {
		t.Fatalf("trials = %v, want %d", v, workers*trialsPer)
	}
	if v := findMetric(t, snap, "nd_deliveries_total").Value; v != workers*trialsPer {
		t.Fatalf("deliveries = %v, want %d", v, workers*trialsPer)
	}
	lat := findMetric(t, snap, "nd_discovery_latency").Histogram
	if lat.Count != workers*trialsPer {
		t.Fatalf("latency count = %d", lat.Count)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	h.merge(make([]uint64, 99), 0)
}

// TestOnEventZeroAlloc locks in the hot-loop contract: a RunObserver
// processes every event kind without allocating.
func TestOnEventZeroAlloc(t *testing.T) {
	o := NewRunObserver(4, 2, nil)
	actions := []radio.Action{
		{Mode: radio.Transmit, Channel: 0},
		{Mode: radio.Receive, Channel: 0},
		{Mode: radio.Transmit, Channel: 1},
		{Mode: radio.Quiet},
	}
	events := []sim.Event{
		{Kind: sim.EventSlot, Slot: 1, Actions: actions},
		{Kind: sim.EventDeliver, Time: 1, From: 0, To: 1, Channel: 0},
		{Kind: sim.EventCollision, Time: 1, From: 0, To: 3, Channel: 0},
		{Kind: sim.EventIdle, Time: 1, To: 2, Channel: 1},
		{Kind: sim.EventFrameStart, Node: 2, Slot: 3, Action: actions[0]},
		{Kind: sim.EventFrameResolve, Node: 2, Slot: 3, Action: actions[1], Collected: 2, Delivered: 1},
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, e := range events {
			o.OnEvent(e)
		}
	}); n != 0 {
		t.Fatalf("OnEvent allocates %v objects per run, want 0", n)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		v    int
		want string
	}{{0, "0"}, {7, "7"}, {42, "42"}, {1234567, "1234567"}} {
		if got := itoa(c.v); got != c.want {
			t.Errorf("itoa(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}
