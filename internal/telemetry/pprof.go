package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling into cpuPath and arranges a heap
// profile into memPath, either path optionally empty. It returns a stop
// function that must be called exactly once (typically deferred) to
// finish both profiles; stop reports the first error encountered while
// writing them. With both paths empty the returned stop is a cheap no-op,
// so commands can call StartProfiles unconditionally from flag values.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("telemetry: start cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("telemetry: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("telemetry: create mem profile: %w", err)
				}
				return firstErr
			}
			// Up-to-date allocation statistics, as `go test -memprofile` does.
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("telemetry: write mem profile: %w", err)
			}
			if err := memFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("telemetry: close mem profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
