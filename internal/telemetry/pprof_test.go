package telemetry

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesNoop(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("unwritable cpu path accepted")
	}
	stop, err := StartProfiles("", filepath.Join(t.TempDir(), "no", "such", "dir", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("unwritable mem path did not error at stop")
	}
}
