// Package telemetry is the run-telemetry layer: cheap always-on metrics
// for everything the engines and the trial pipeline do, with on-demand
// profiling and export.
//
// The package has three floors, mirroring DESIGN.md §telemetry:
//
//   - Registry (this file): a zero-allocation metrics registry of named
//     counters, gauges and fixed-bucket histograms. Hot-path operations
//     (Add, Set, Observe) are single atomic instructions that allocate
//     nothing and are safe under the harness's concurrent trial pool;
//     registration and snapshots are cold paths.
//   - RunObserver / Aggregate (observer.go): a sim.Observer that derives
//     per-run series (slots, transmissions, collisions, idle listens,
//     clear deliveries, duplicate-suppressed records, per-channel
//     utilization, per-node discovery-latency histograms) from the
//     engines' event stream, and the concurrency-safe aggregate that
//     merges those series across trials into a Registry.
//   - Exporters (export.go): Prometheus text format, expvar, and NDJSON.
//
// Everything is stdlib-only and deliberately decoupled: the engines know
// nothing about telemetry (they emit sim.Event), the harness knows only the
// narrow Instrument seam, and commands wire the floors together.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; Add and Inc are lock-free and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//nd:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the Prometheus counter contract; negative
// deltas are legal Go but lie to exporters).
//
//nd:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value reads
// 0; Set is lock-free and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
//
//nd:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at construction.
// Observe is lock-free and allocation-free. Under concurrent writers a
// Snapshot is a best-effort moment in time (bucket counts, total count and
// sum are read independently); it is exact once writers quiesce, which the
// harness guarantees by joining its pool before export.
type Histogram struct {
	bounds  []float64       // ascending upper bounds; immutable
	buckets []atomic.Uint64 // len(bounds)+1; last bucket is +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 accumulated by CAS
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (observation v lands in the first bucket with v ≤ bound, or the
// implicit +Inf overflow bucket). Bounds must be finite and strictly
// ascending: a NaN bound would poison the binary search in Observe (every
// comparison against NaN is false, silently mis-bucketing observations)
// and a +Inf bound would shadow the implicit overflow bucket, so both are
// rejected here with the offending index instead.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) {
			return nil, fmt.Errorf("telemetry: histogram bound %d is NaN", i)
		}
		if math.IsInf(b, 0) {
			return nil, fmt.Errorf("telemetry: histogram bound %d is %v (the +Inf overflow bucket is implicit)", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: histogram bounds not strictly ascending at %d (%v after %v)",
				i, b, bounds[i-1])
		}
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	return &Histogram{bounds: own, buckets: make([]atomic.Uint64, len(own)+1)}, nil
}

// ExponentialBounds returns n strictly ascending bounds start, start*factor,
// start*factor², … — the usual latency bucket ladder.
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one observation.
//
//nd:hotpath
func (h *Histogram) Observe(v float64) {
	// Hand-rolled lower bound over the (short) fixed bounds slice; the
	// overflow bucket catches everything past the last bound.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// observeN merges n observations that all fall in bucket index i with total
// value sum — the flush path for RunObserver's plain per-run buckets.
//
//nd:hotpath
func (h *Histogram) observeBucket(i int, n uint64, sum float64) {
	if n == 0 {
		return
	}
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable; shared
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// attributing each bucket's mass to its upper bound (the overflow bucket
// reports the last finite bound). It returns 0 for an empty histogram —
// histogram quantiles are summaries, not oracles, so unlike
// metrics.Quantile this never panics.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Label is one fixed name=value pair attached to a metric at registration.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// key builds the registry identity "name{k=v,…}".
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named metrics. Registration (the Counter/Gauge/Histogram
// get-or-create methods) and Snapshot take a mutex; the returned instrument
// pointers are then used lock-free. A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	ordered []*metric // registration order; Snapshot sorts a copy
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Counter returns the counter registered under name+labels, creating it on
// first use. It panics if the key is already registered as a different
// kind — that is a programming error, like an expvar name collision.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.getOrCreate(name, help, labels, kindCounter, nil)
	return m.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use. Same collision contract as Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.getOrCreate(name, help, labels, kindGauge, nil)
	return m.gauge
}

// Histogram returns the histogram registered under name+labels, creating
// it with the given bounds on first use (bounds are ignored when the
// histogram already exists). Same collision contract as Counter; invalid
// bounds panic, as they are compile-time constants in practice.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err)
	}
	m := r.getOrCreate(name, help, labels, kindHistogram, h)
	return m.hist
}

func (r *Registry) getOrCreate(name, help string, labels []Label, kind metricKind, hist *Histogram) *metric {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, requested as %s", key, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	default:
		m.hist = hist
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// MetricSnapshot is one metric's point-in-time state, the exporters' input.
type MetricSnapshot struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	// Value holds the counter or gauge value (counters as float64 for a
	// uniform shape); zero for histograms.
	Value float64 `json:"value"`
	// Histogram is set for histogram metrics only.
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot copies every metric's current state, sorted by name then label
// key (a deterministic order regardless of registration interleaving).
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.Unlock()

	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return metricKey(ms[i].name, ms[i].labels) < metricKey(ms[j].name, ms[j].labels)
	})
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind.String(), Labels: m.labels}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.counter.Value())
		case kindGauge:
			s.Value = m.gauge.Value()
		default:
			hs := m.hist.Snapshot()
			s.Histogram = &hs
		}
		out = append(out, s)
	}
	return out
}
