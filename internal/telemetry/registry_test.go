package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %v, want -1", g.Value())
	}
}

func TestNewHistogramValidation(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name    string
		bounds  []float64
		wantErr string // "" = must be accepted
	}{
		{"valid", []float64{1, 2, 4}, ""},
		{"valid negative and zero", []float64{-3, 0, 0.5}, ""},
		{"single bound", []float64{10}, ""},
		{"nil", nil, "at least one"},
		{"empty", []float64{}, "at least one"},
		{"duplicate", []float64{1, 1}, "not strictly ascending at 1"},
		{"descending", []float64{2, 1}, "not strictly ascending at 1"},
		{"unsorted interior", []float64{1, 5, 3, 7}, "not strictly ascending at 2"},
		{"NaN lone", []float64{nan}, "bound 0 is NaN"},
		{"NaN interior", []float64{1, nan, 3}, "bound 1 is NaN"},
		{"+Inf", []float64{1, inf}, "bound 1 is +Inf"},
		{"-Inf", []float64{math.Inf(-1), 1}, "bound 0 is -Inf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := NewHistogram(tc.bounds)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid bounds rejected: %v", err)
				}
				if h == nil {
					t.Fatal("nil histogram without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed bounds %v accepted", tc.bounds)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name the problem (want substring %q)", err, tc.wantErr)
			}
		})
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// v lands in the first bucket with v ≤ bound: {0.5,1} → ≤1, {1.5,2} → ≤2,
	// {3,4} → ≤4, {5} → overflow.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 17 {
		t.Errorf("sum = %v, want 17", s.Sum)
	}
}

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}

	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 1, 2, 4, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct{ q, want float64 }{
		{0, 1},    // clamped to first observation's bucket bound
		{0.2, 1},  // rank 1 of 5
		{0.4, 1},  // rank 2
		{0.6, 2},  // rank 3
		{0.8, 4},  // rank 4
		{1, 4},    // overflow attributed to last finite bound
		{1.5, 4},  // out-of-range q clamps
		{-0.5, 1}, // out-of-range q clamps
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "help")
	if c1 != c2 {
		t.Error("same key returned distinct counters")
	}
	cl := r.Counter("x_total", "help", Label{Key: "k", Value: "v"})
	if cl == c1 {
		t.Error("labeled counter aliased the unlabeled one")
	}
	h1 := r.Histogram("h", "help", []float64{1, 2})
	h2 := r.Histogram("h", "help", []float64{8, 9}) // bounds ignored on reuse
	if h1 != h2 {
		t.Error("same key returned distinct histograms")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind collision did not panic")
			}
		}()
		r.Gauge("x_total", "help")
	}()
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "")
	r.Gauge("aa", "")
	r.Counter("mm_total", "", Label{Key: "k", Value: "2"})
	r.Counter("mm_total", "", Label{Key: "k", Value: "1"})
	snap := r.Snapshot()
	var keys []string
	for _, m := range snap {
		keys = append(keys, metricKey(m.Name, m.Labels))
	}
	want := []string{"aa", "mm_total{k=1}", "mm_total{k=2}", "zz_total"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", keys, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_hist", "", []float64{1, 10})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := r.Histogram("shared_hist", "", []float64{1, 10}).Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	var sum float64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			sum += float64(i % 20)
		}
	}
	if math.Abs(s.Sum-sum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", s.Sum, sum)
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ExponentialBounds(1, 2, 10))
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("hot path allocates %v objects per run, want 0", n)
	}
}
