package topology

import (
	"fmt"
	"math"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
)

// AssignHomogeneous gives every node the full universal set {0..universe−1}.
// This is the homogeneous special case (ρ = 1) that much prior work assumes.
func AssignHomogeneous(nw *Network, universe int) error {
	if universe <= 0 {
		return fmt.Errorf("topology: homogeneous universe size %d must be positive", universe)
	}
	full := channel.Range(universe)
	for u := 0; u < nw.N(); u++ {
		nw.SetAvail(NodeID(u), full)
	}
	return nil
}

// AssignUniformK gives every node an independent uniformly random k-subset
// of {0..universe−1}, then repairs infeasibility (a node with no channels, or
// an edge with empty span) by adding shared channels. Repair may grow some
// sets slightly beyond k; the caller reads the realized parameters from
// ComputeParams.
func AssignUniformK(nw *Network, universe, k int, r *rng.Source) error {
	if universe <= 0 {
		return fmt.Errorf("topology: uniform-k universe size %d must be positive", universe)
	}
	if k <= 0 || k > universe {
		return fmt.Errorf("topology: uniform-k subset size %d outside [1,%d]", k, universe)
	}
	full := channel.Range(universe)
	for u := 0; u < nw.N(); u++ {
		sub, err := channel.RandomSubset(full, k, r)
		if err != nil {
			return err
		}
		nw.SetAvail(NodeID(u), sub)
	}
	return repairFeasibility(nw, full, r)
}

// AssignBernoulli includes each universe channel in each node's set
// independently with probability q, then repairs infeasibility. This models
// i.i.d. per-node spectrum availability.
func AssignBernoulli(nw *Network, universe int, q float64, r *rng.Source) error {
	if universe <= 0 {
		return fmt.Errorf("topology: bernoulli universe size %d must be positive", universe)
	}
	if q < 0 || q > 1 {
		return fmt.Errorf("topology: bernoulli inclusion probability %v outside [0,1]", q)
	}
	full := channel.Range(universe)
	for u := 0; u < nw.N(); u++ {
		var s channel.Set
		for c := 0; c < universe; c++ {
			if r.Bernoulli(q) {
				s.Add(channel.ID(c))
			}
		}
		nw.SetAvail(NodeID(u), s)
	}
	return repairFeasibility(nw, full, r)
}

// PrimaryUser is a licensed transmitter occupying one channel within an
// exclusion radius. Secondary (cognitive) nodes inside the radius must not
// use that channel.
type PrimaryUser struct {
	X, Y    float64
	Channel channel.ID
	Radius  float64
}

// AssignPrimaryUsers derives heterogeneous available sets from spatial
// primary-user activity — the cognitive-radio scenario that motivates the
// paper. numPrimaries primaries are placed uniformly in the unit square,
// each licensed to a uniformly random channel and active within
// exclusionRadius. A node's available set is the universe minus the channels
// of all primaries within range. Spatial correlation emerges naturally:
// nearby nodes lose similar channels, so spans stay large between neighbors
// while distant parts of the network diverge. Infeasibility is repaired as
// in the other assigners. The placed primaries are returned for
// visualization.
func AssignPrimaryUsers(nw *Network, universe, numPrimaries int, exclusionRadius float64, r *rng.Source) ([]PrimaryUser, error) {
	if universe <= 0 {
		return nil, fmt.Errorf("topology: primary-user universe size %d must be positive", universe)
	}
	if numPrimaries < 0 {
		return nil, fmt.Errorf("topology: %d primaries is negative", numPrimaries)
	}
	if exclusionRadius < 0 {
		return nil, fmt.Errorf("topology: exclusion radius %v is negative", exclusionRadius)
	}
	full := channel.Range(universe)
	primaries := make([]PrimaryUser, numPrimaries)
	for i := range primaries {
		primaries[i] = PrimaryUser{
			X:       r.Float64(),
			Y:       r.Float64(),
			Channel: channel.ID(r.IntN(universe)),
			Radius:  exclusionRadius,
		}
	}
	for u := 0; u < nw.N(); u++ {
		node := nw.Node(NodeID(u))
		avail := full.Clone()
		for _, pu := range primaries {
			if math.Hypot(node.X-pu.X, node.Y-pu.Y) <= pu.Radius {
				avail.Remove(pu.Channel)
			}
		}
		nw.SetAvail(NodeID(u), avail)
	}
	if err := repairFeasibility(nw, full, r); err != nil {
		return nil, err
	}
	return primaries, nil
}

// AssignBlockOverlap gives every node a set of exactly shared+private
// channels: a common block {0..shared−1} plus a per-node private block
// disjoint from everyone else's. Every link span is then exactly the shared
// block, every |A(u)| = shared+private, and therefore
//
//	ρ = shared / (shared + private)
//
// exactly. This assigner is the control knob of the span-ratio scaling
// experiment (E8): it realizes any rational ρ without changing N, Δ or the
// graph.
func AssignBlockOverlap(nw *Network, shared, private int) error {
	if shared <= 0 {
		return fmt.Errorf("topology: block-overlap shared block %d must be positive", shared)
	}
	if private < 0 {
		return fmt.Errorf("topology: block-overlap private block %d is negative", private)
	}
	for u := 0; u < nw.N(); u++ {
		var s channel.Set
		for c := 0; c < shared; c++ {
			s.Add(channel.ID(c))
		}
		base := shared + u*private
		for c := 0; c < private; c++ {
			s.Add(channel.ID(base + c))
		}
		nw.SetAvail(NodeID(u), s)
	}
	return nil
}

// repairFeasibility makes the network valid for discovery: every node gets
// at least one channel and every edge a non-empty span. Repairs add the
// minimum number of channels: a random universe channel for an empty node
// set; for an empty span, one endpoint's random channel is granted to the
// other endpoint (preferring to extend the smaller set).
func repairFeasibility(nw *Network, universe channel.Set, r *rng.Source) error {
	for u := 0; u < nw.N(); u++ {
		if nw.Avail(NodeID(u)).IsEmpty() {
			c, err := universe.Pick(r)
			if err != nil {
				return fmt.Errorf("topology: repair node %d: %w", u, err)
			}
			s := nw.Avail(NodeID(u)).Clone()
			s.Add(c)
			nw.SetAvail(NodeID(u), s)
		}
	}
	for _, l := range nw.DirectedLinks() {
		if l.From > l.To {
			continue // handle each undirected edge once
		}
		if !nw.Span(l.From, l.To).IsEmpty() {
			continue
		}
		a, b := l.From, l.To
		// Grant one of the larger set's channels to the smaller set, keeping
		// set sizes balanced.
		donor, recipient := a, b
		if nw.Avail(a).Size() < nw.Avail(b).Size() {
			donor, recipient = b, a
		}
		c, err := nw.Avail(donor).Pick(r)
		if err != nil {
			return fmt.Errorf("topology: repair edge {%d,%d}: %w", a, b, err)
		}
		s := nw.Avail(recipient).Clone()
		s.Add(c)
		nw.SetAvail(recipient, s)
	}
	return nil
}

// DropRandomDirections makes a symmetric network partially asymmetric: for
// each undirected edge, with the given probability one uniformly chosen
// direction is dropped. This realizes the paper's Section V extension (a):
// links where u hears v but not vice versa (e.g. asymmetric transmit powers
// or interference floors).
func DropRandomDirections(nw *Network, fraction float64, r *rng.Source) error {
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("topology: asymmetric fraction %v outside [0,1]", fraction)
	}
	for _, l := range nw.DirectedLinks() {
		if l.From > l.To {
			continue // visit each undirected edge once
		}
		if !r.Bernoulli(fraction) {
			continue
		}
		from, to := l.From, l.To
		if r.Bernoulli(0.5) {
			from, to = to, from
		}
		if err := nw.DropDirection(from, to); err != nil {
			return err
		}
	}
	return nil
}

// RestrictSpansRandomly caps every edge's span at maxSpan channels, chosen
// uniformly from the edge's natural span A(u)∩A(v). This realizes the
// paper's Section II/V extension (c): channels with diverse propagation
// characteristics, where a link physically works only on a subset of the
// channels both endpoints have available. Edges whose span is already
// within the cap are untouched.
func RestrictSpansRandomly(nw *Network, maxSpan int, r *rng.Source) error {
	if maxSpan < 1 {
		return fmt.Errorf("topology: span cap %d must be positive", maxSpan)
	}
	for _, l := range nw.DirectedLinks() {
		if l.From > l.To {
			continue
		}
		span := nw.Span(l.From, l.To)
		if span.Size() <= maxSpan {
			continue
		}
		sub, err := channel.RandomSubset(span, maxSpan, r)
		if err != nil {
			return fmt.Errorf("topology: restrict edge {%d,%d}: %w", l.From, l.To, err)
		}
		if err := nw.RestrictSpan(l.From, l.To, sub); err != nil {
			return err
		}
	}
	return nil
}

// RevokeChannel models the arrival of a licensed primary user during
// operation — the event the paper's introduction says secondary users must
// yield to ("when a primary user arrives and starts using its channel, the
// secondary users have to vacate the channel"). Channel c is removed from
// the available set of every node within radius of (x, y). It returns the
// IDs of the affected nodes.
//
// Revocation can legitimately leave nodes with empty sets or links with
// empty spans — that is the physical reality of spectrum churn, so unlike
// the assigners this function performs no repair. Callers re-derive the
// discovery target from DiscoverableLinks afterwards.
func RevokeChannel(nw *Network, c channel.ID, x, y, radius float64) []NodeID {
	var affected []NodeID
	for u := 0; u < nw.N(); u++ {
		node := nw.Node(NodeID(u))
		if math.Hypot(node.X-x, node.Y-y) > radius {
			continue
		}
		if !nw.Avail(NodeID(u)).Contains(c) {
			continue
		}
		s := nw.Avail(NodeID(u)).Clone()
		s.Remove(c)
		nw.SetAvail(NodeID(u), s)
		affected = append(affected, NodeID(u))
	}
	return affected
}
