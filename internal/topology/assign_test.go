package topology

import (
	"math"
	"testing"
	"testing/quick"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
)

func TestAssignHomogeneous(t *testing.T) {
	nw := mustLine(t, 4)
	if err := AssignHomogeneous(nw, 5); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	p := nw.ComputeParams()
	if p.S != 5 || p.UniverseSize != 5 {
		t.Fatalf("params %+v, want S=U=5", p)
	}
	if p.Rho != 1 {
		t.Fatalf("homogeneous rho = %v, want 1", p.Rho)
	}
	if err := AssignHomogeneous(nw, 0); err == nil {
		t.Fatal("universe 0 accepted")
	}
}

func TestAssignUniformK(t *testing.T) {
	r := rng.New(5)
	nw, err := Clique(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignUniformK(nw, 12, 4, r); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("uniform-k left infeasible network: %v", err)
	}
	for u := 0; u < nw.N(); u++ {
		size := nw.Avail(NodeID(u)).Size()
		if size < 4 {
			t.Fatalf("node %d has %d channels, want >= 4", u, size)
		}
	}
	if err := AssignUniformK(nw, 12, 0, r); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := AssignUniformK(nw, 12, 13, r); err == nil {
		t.Fatal("k > universe accepted")
	}
	if err := AssignUniformK(nw, 0, 1, r); err == nil {
		t.Fatal("universe 0 accepted")
	}
}

func TestAssignBernoulli(t *testing.T) {
	r := rng.New(7)
	nw, err := GeometricConnected(25, 0.4, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignBernoulli(nw, 10, 0.5, r); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("bernoulli left infeasible network: %v", err)
	}
	if err := AssignBernoulli(nw, 10, 1.2, r); err == nil {
		t.Fatal("q > 1 accepted")
	}
	if err := AssignBernoulli(nw, -1, 0.5, r); err == nil {
		t.Fatal("negative universe accepted")
	}
}

func TestAssignBernoulliExtremeQRepaired(t *testing.T) {
	// q = 0 leaves every set empty; repair must still produce a valid
	// network.
	r := rng.New(11)
	nw := mustLine(t, 6)
	if err := AssignBernoulli(nw, 8, 0, r); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("repair failed on q=0: %v", err)
	}
}

func TestAssignPrimaryUsers(t *testing.T) {
	r := rng.New(13)
	nw, err := GeometricConnected(30, 0.35, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	primaries, err := AssignPrimaryUsers(nw, 10, 15, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(primaries) != 15 {
		t.Fatalf("%d primaries returned, want 15", len(primaries))
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("primary-user assignment infeasible: %v", err)
	}
	// Heterogeneity should generally appear: not all sets equal the
	// universe (with 15 primaries over 10 channels this is near-certain).
	hetero := false
	for u := 0; u < nw.N(); u++ {
		if nw.Avail(NodeID(u)).Size() < 10 {
			hetero = true
			break
		}
	}
	if !hetero {
		t.Fatal("primary users removed no channels anywhere")
	}
	if _, err := AssignPrimaryUsers(nw, 0, 5, 0.3, r); err == nil {
		t.Fatal("universe 0 accepted")
	}
	if _, err := AssignPrimaryUsers(nw, 10, -1, 0.3, r); err == nil {
		t.Fatal("negative primaries accepted")
	}
	if _, err := AssignPrimaryUsers(nw, 10, 5, -0.1, r); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestAssignPrimaryUsersSpatialExclusion(t *testing.T) {
	// With zero primaries, every node keeps the full universe.
	r := rng.New(17)
	nw, err := Geometric(10, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssignPrimaryUsers(nw, 6, 0, 0.2, r); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < nw.N(); u++ {
		if nw.Avail(NodeID(u)).Size() != 6 {
			t.Fatalf("node %d lost channels with no primaries", u)
		}
	}
}

func TestAssignBlockOverlapExactRho(t *testing.T) {
	cases := []struct {
		shared, private int
	}{
		{1, 0}, {1, 1}, {2, 2}, {3, 1}, {1, 9}, {4, 4},
	}
	for _, tt := range cases {
		nw, err := Ring(6)
		if err != nil {
			t.Fatal(err)
		}
		if err := AssignBlockOverlap(nw, tt.shared, tt.private); err != nil {
			t.Fatal(err)
		}
		if err := nw.Validate(); err != nil {
			t.Fatal(err)
		}
		p := nw.ComputeParams()
		wantRho := float64(tt.shared) / float64(tt.shared+tt.private)
		if math.Abs(p.Rho-wantRho) > 1e-12 {
			t.Errorf("shared=%d private=%d: rho %v, want %v", tt.shared, tt.private, p.Rho, wantRho)
		}
		if p.S != tt.shared+tt.private {
			t.Errorf("shared=%d private=%d: S %d, want %d", tt.shared, tt.private, p.S, tt.shared+tt.private)
		}
	}
	nw, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignBlockOverlap(nw, 0, 2); err == nil {
		t.Fatal("shared=0 accepted")
	}
	if err := AssignBlockOverlap(nw, 2, -1); err == nil {
		t.Fatal("negative private accepted")
	}
}

func TestBlockOverlapPrivateChannelsDisjoint(t *testing.T) {
	nw, err := Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignBlockOverlap(nw, 2, 3); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < nw.N(); u++ {
		for v := u + 1; v < nw.N(); v++ {
			inter := nw.Avail(NodeID(u)).Intersect(nw.Avail(NodeID(v)))
			if inter.Size() != 2 {
				t.Fatalf("nodes %d,%d share %d channels, want exactly the 2 shared", u, v, inter.Size())
			}
		}
	}
}

func TestComputeParamsKnownNetwork(t *testing.T) {
	// Star with hub 0 and 3 leaves, all on channel {0}; hub also has {1}
	// shared with leaf 1 only.
	nw, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetAvail(0, parseSet(t, "{0,1}"))
	nw.SetAvail(1, parseSet(t, "{0,1}"))
	nw.SetAvail(2, parseSet(t, "{0}"))
	nw.SetAvail(3, parseSet(t, "{0}"))
	p := nw.ComputeParams()
	if p.N != 4 || p.S != 2 {
		t.Fatalf("params %+v", p)
	}
	// Hub sees 3 neighbors on channel 0.
	if p.Delta != 3 {
		t.Fatalf("Delta = %d, want 3", p.Delta)
	}
	// Link (0,2): span {0}, |A(2)|=1 → ratio 1. Link (2,0): span {0},
	// |A(0)|=2 → ratio 1/2. Minimum over links = 1/2.
	if math.Abs(p.Rho-0.5) > 1e-12 {
		t.Fatalf("rho = %v, want 0.5", p.Rho)
	}
	if err := p.CheckRhoBounds(); err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Fatal("empty params string")
	}
}

func TestParamsEdgelessNetwork(t *testing.T) {
	nw, err := Clique(1)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetAvail(0, parseSet(t, "{0}"))
	p := nw.ComputeParams()
	if p.Rho != 1 || p.Delta != 0 || p.DiscoverableLinks != 0 {
		t.Fatalf("edgeless params %+v", p)
	}
	if err := p.CheckRhoBounds(); err != nil {
		t.Fatal(err)
	}
}

// Property: every assigner yields a network whose parameters respect the
// paper's structural bounds (span ⊆ A(u)∩A(v) by construction; 1/S ≤ ρ ≤ 1;
// Δ ≤ graph degree).
func TestAssignersRespectBoundsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, uRaw uint8) bool {
		n := int(nRaw%12) + 3
		universe := int(uRaw%10) + 2
		r := rng.New(seed)
		nw, err := ErdosRenyi(n, 0.5, r)
		if err != nil {
			return false
		}
		switch seed % 3 {
		case 0:
			k := universe/2 + 1
			if err := AssignUniformK(nw, universe, k, r); err != nil {
				return false
			}
		case 1:
			if err := AssignBernoulli(nw, universe, 0.4, r); err != nil {
				return false
			}
		default:
			if err := AssignHomogeneous(nw, universe); err != nil {
				return false
			}
		}
		if err := nw.Validate(); err != nil {
			return false
		}
		p := nw.ComputeParams()
		if p.CheckRhoBounds() != nil {
			return false
		}
		if p.Delta > p.MaxGraphDegree {
			return false
		}
		if p.S > p.UniverseSize {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRevokeChannel(t *testing.T) {
	r := rng.New(21)
	nw, err := Geometric(20, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignHomogeneous(nw, 4); err != nil {
		t.Fatal(err)
	}
	affected := RevokeChannel(nw, 1, 0.5, 0.5, 0.4)
	if len(affected) == 0 {
		t.Fatal("central revocation affected nobody")
	}
	for _, u := range affected {
		if nw.Avail(u).Contains(1) {
			t.Fatalf("node %d still holds revoked channel", u)
		}
		if nw.Avail(u).Size() != 3 {
			t.Fatalf("node %d lost more than one channel", u)
		}
	}
	// Nodes outside the radius keep the channel.
	outside := 0
	for u := 0; u < nw.N(); u++ {
		if nw.Avail(NodeID(u)).Contains(1) {
			outside++
		}
	}
	if outside+len(affected) != nw.N() {
		t.Fatal("affected/unaffected partition inconsistent")
	}
	// Re-revoking is a no-op.
	if again := RevokeChannel(nw, 1, 0.5, 0.5, 0.4); len(again) != 0 {
		t.Fatalf("second revocation affected %d nodes", len(again))
	}
}

func TestRevokeChannelCanEmptySets(t *testing.T) {
	nw := mustLine(t, 2)
	nw.SetAvail(0, channel.NewSet(0))
	nw.SetAvail(1, channel.NewSet(0))
	affected := RevokeChannel(nw, 0, 0, 0, 10)
	if len(affected) != 2 {
		t.Fatalf("affected %d nodes, want 2", len(affected))
	}
	if !nw.Avail(0).IsEmpty() {
		t.Fatal("set not emptied")
	}
	// The discovery target collapses accordingly.
	if links := nw.DiscoverableLinks(); len(links) != 0 {
		t.Fatalf("%d discoverable links remain with no channels", len(links))
	}
}
