package topology

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
)

func TestReachesSymmetricDefault(t *testing.T) {
	nw := mustLine(t, 3)
	if !nw.Symmetric() {
		t.Fatal("fresh network not symmetric")
	}
	if !nw.Reaches(0, 1) || !nw.Reaches(1, 0) {
		t.Fatal("adjacent nodes do not reach each other")
	}
	if nw.Reaches(0, 2) {
		t.Fatal("non-adjacent nodes reach")
	}
}

func TestDropDirection(t *testing.T) {
	nw := mustLine(t, 2)
	nw.SetAvail(0, channel.NewSet(0))
	nw.SetAvail(1, channel.NewSet(0))
	if err := nw.DropDirection(0, 1); err != nil {
		t.Fatal(err)
	}
	if nw.Symmetric() {
		t.Fatal("network still reported symmetric")
	}
	if nw.Reaches(0, 1) {
		t.Fatal("dropped direction still reaches")
	}
	if !nw.Reaches(1, 0) {
		t.Fatal("reverse direction was also dropped")
	}
	// Adjacency itself is untouched.
	if !nw.AreNeighbors(0, 1) {
		t.Fatal("adjacency removed by DropDirection")
	}
	if err := nw.DropDirection(0, 5); err == nil {
		t.Fatal("drop of non-edge accepted")
	}
}

func TestDirectedLinksRespectDrops(t *testing.T) {
	nw := mustLine(t, 3)
	for u := 0; u < 3; u++ {
		nw.SetAvail(NodeID(u), channel.NewSet(0))
	}
	if err := nw.DropDirection(1, 2); err != nil {
		t.Fatal(err)
	}
	links := nw.DirectedLinks()
	if len(links) != 3 {
		t.Fatalf("got %d directed links, want 3: %v", len(links), links)
	}
	for _, l := range links {
		if l.From == 1 && l.To == 2 {
			t.Fatal("dropped link listed")
		}
	}
	disc := nw.DiscoverableLinks()
	if len(disc) != 3 {
		t.Fatalf("discoverable links %v", disc)
	}
}

func TestDegreeOnCountsInDegree(t *testing.T) {
	nw, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		nw.SetAvail(NodeID(u), channel.NewSet(0))
	}
	if got := nw.DegreeOn(0, 0); got != 3 {
		t.Fatalf("symmetric hub in-degree %d, want 3", got)
	}
	// Leaf 1 can no longer be heard by the hub.
	if err := nw.DropDirection(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := nw.DegreeOn(0, 0); got != 2 {
		t.Fatalf("hub in-degree after drop %d, want 2", got)
	}
	// The hub still reaches leaf 1, so leaf 1's in-degree is unchanged.
	if got := nw.DegreeOn(1, 0); got != 1 {
		t.Fatalf("leaf in-degree %d, want 1", got)
	}
}

func TestComputeParamsWithDrops(t *testing.T) {
	nw := mustLine(t, 2)
	nw.SetAvail(0, channel.NewSet(0))
	nw.SetAvail(1, channel.NewSet(0))
	if err := nw.DropDirection(0, 1); err != nil {
		t.Fatal(err)
	}
	p := nw.ComputeParams()
	if p.DiscoverableLinks != 1 {
		t.Fatalf("discoverable links %d, want 1", p.DiscoverableLinks)
	}
	if p.Delta != 1 {
		t.Fatalf("Delta %d, want 1", p.Delta)
	}
}

func TestDropRandomDirections(t *testing.T) {
	r := rng.New(5)
	nw, err := Clique(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignHomogeneous(nw, 2); err != nil {
		t.Fatal(err)
	}
	if err := DropRandomDirections(nw, 0.5, r); err != nil {
		t.Fatal(err)
	}
	total := 2 * nw.EdgeCount()
	directed := len(nw.DirectedLinks())
	if directed >= total {
		t.Fatal("no directions dropped at fraction 0.5")
	}
	// At most one direction per edge is dropped.
	if directed < nw.EdgeCount() {
		t.Fatalf("more than one direction dropped per edge: %d < %d", directed, nw.EdgeCount())
	}
	if err := DropRandomDirections(nw, 1.5, r); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	// Fraction 0 is a no-op.
	nw2, err := Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignHomogeneous(nw2, 2); err != nil {
		t.Fatal(err)
	}
	if err := DropRandomDirections(nw2, 0, r); err != nil {
		t.Fatal(err)
	}
	if !nw2.Symmetric() {
		t.Fatal("fraction 0 dropped directions")
	}
}

func TestRestrictSpansRandomly(t *testing.T) {
	r := rng.New(6)
	nw, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignHomogeneous(nw, 8); err != nil {
		t.Fatal(err)
	}
	if err := RestrictSpansRandomly(nw, 2, r); err != nil {
		t.Fatal(err)
	}
	for _, l := range nw.DirectedLinks() {
		span := nw.Span(l.From, l.To)
		if span.Size() > 2 {
			t.Fatalf("edge (%d,%d) span %v exceeds cap", l.From, l.To, span)
		}
		if span.IsEmpty() {
			t.Fatalf("edge (%d,%d) span emptied", l.From, l.To)
		}
		if !span.SubsetOf(nw.Avail(l.From)) || !span.SubsetOf(nw.Avail(l.To)) {
			t.Fatalf("restricted span outside endpoints' sets")
		}
	}
	p := nw.ComputeParams()
	if p.Rho > 2.0/8 {
		t.Fatalf("rho %v too high after restriction to 2 of 8", p.Rho)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := RestrictSpansRandomly(nw, 0, r); err == nil {
		t.Fatal("span cap 0 accepted")
	}
}
