package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"m2hew/internal/channel"
)

// The codec serializes a Network — including the extension state that the
// human-oriented dumps omit: per-edge span overrides and dropped directions.
// It exists so an exact scenario (e.g. one that produced an interesting
// result) can be shared and re-run bit-for-bit.

// codecVersion guards the wire format.
const codecVersion = 1

type networkJSON struct {
	Version int        `json:"version"`
	Nodes   []nodeJSON `json:"nodes"`
	Edges   []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	ID       int     `json:"id"`
	X        float64 `json:"x,omitempty"`
	Y        float64 `json:"y,omitempty"`
	Channels []int   `json:"channels"`
}

type edgeJSON struct {
	From int `json:"from"`
	To   int `json:"to"`
	// SpanOverride, when non-nil, restricts the edge's span (diverse
	// propagation). Empty-but-present is meaningful ("no usable channel"),
	// so the field distinguishes nil from empty via a pointer.
	SpanOverride *[]int `json:"spanOverride,omitempty"`
	// DropForward / DropReverse mark asymmetric directions (From→To and
	// To→From respectively).
	DropForward bool `json:"dropForward,omitempty"`
	DropReverse bool `json:"dropReverse,omitempty"`
}

// EncodeJSON writes the network, with all extension state, to w.
func (nw *Network) EncodeJSON(w io.Writer) error {
	doc := networkJSON{Version: codecVersion}
	for _, node := range nw.nodes {
		doc.Nodes = append(doc.Nodes, nodeJSON{
			ID: int(node.ID), X: node.X, Y: node.Y,
			Channels: idsToInts(node.Avail.IDs()),
		})
	}
	for u := 0; u < nw.N(); u++ {
		for _, v := range nw.adj[u] {
			if v < NodeID(u) {
				continue // one record per undirected edge
			}
			e := edgeJSON{From: u, To: int(v)}
			if mask, ok := nw.spanOverride[canonicalEdge(NodeID(u), v)]; ok {
				ints := idsToInts(mask.IDs())
				e.SpanOverride = &ints
			}
			e.DropForward = nw.dropped[[2]NodeID{NodeID(u), v}]
			e.DropReverse = nw.dropped[[2]NodeID{v, NodeID(u)}]
			doc.Edges = append(doc.Edges, e)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeJSON reads a network previously written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Network, error) {
	var doc networkJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("topology: decode network: %w", err)
	}
	if doc.Version != codecVersion {
		return nil, fmt.Errorf("topology: unsupported network format version %d", doc.Version)
	}
	nodes := make([]Node, len(doc.Nodes))
	for i, n := range doc.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("topology: decode: node IDs must be dense, got %d at index %d", n.ID, i)
		}
		avail, err := intsToSet(n.Channels)
		if err != nil {
			return nil, fmt.Errorf("topology: decode node %d: %w", n.ID, err)
		}
		nodes[i] = Node{ID: NodeID(i), X: n.X, Y: n.Y, Avail: avail}
	}
	edges := make([][2]NodeID, 0, len(doc.Edges))
	for _, e := range doc.Edges {
		edges = append(edges, [2]NodeID{NodeID(e.From), NodeID(e.To)})
	}
	nw, err := newNetwork(nodes, edges)
	if err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	// Re-apply the sets through SetAvail so the cached universal set is
	// computed.
	for i := range nodes {
		nw.SetAvail(NodeID(i), nodes[i].Avail)
	}
	for _, e := range doc.Edges {
		from, to := NodeID(e.From), NodeID(e.To)
		if e.SpanOverride != nil {
			mask, err := intsToSet(*e.SpanOverride)
			if err != nil {
				return nil, fmt.Errorf("topology: decode edge {%d,%d}: %w", e.From, e.To, err)
			}
			if err := nw.RestrictSpan(from, to, mask); err != nil {
				return nil, err
			}
		}
		if e.DropForward {
			if err := nw.DropDirection(from, to); err != nil {
				return nil, err
			}
		}
		if e.DropReverse {
			if err := nw.DropDirection(to, from); err != nil {
				return nil, err
			}
		}
	}
	return nw, nil
}

func idsToInts(ids []channel.ID) []int {
	out := make([]int, len(ids))
	for i, c := range ids {
		out[i] = int(c)
	}
	return out
}

func intsToSet(ints []int) (channel.Set, error) {
	var s channel.Set
	for _, c := range ints {
		if c < 0 || c > channel.MaxParsedID {
			return channel.Set{}, fmt.Errorf("channel %d out of range", c)
		}
		s.Add(channel.ID(c))
	}
	return s, nil
}
