package topology

import (
	"bytes"
	"strings"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
)

// roundTrip encodes and decodes a network, failing the test on error.
func roundTrip(t *testing.T, nw *Network) *Network {
	t.Helper()
	var buf bytes.Buffer
	if err := nw.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// assertEqualNetworks compares every observable property of two networks.
func assertEqualNetworks(t *testing.T, want, got *Network) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("N %d != %d", got.N(), want.N())
	}
	for u := 0; u < want.N(); u++ {
		wn, gn := want.Node(NodeID(u)), got.Node(NodeID(u))
		if wn.X != gn.X || wn.Y != gn.Y {
			t.Fatalf("node %d position differs", u)
		}
		if !want.Avail(NodeID(u)).Equal(got.Avail(NodeID(u))) {
			t.Fatalf("node %d avail %v != %v", u, got.Avail(NodeID(u)), want.Avail(NodeID(u)))
		}
		wadj, gadj := want.Neighbors(NodeID(u)), got.Neighbors(NodeID(u))
		if len(wadj) != len(gadj) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range wadj {
			if wadj[i] != gadj[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
			v := wadj[i]
			if !want.Span(NodeID(u), v).Equal(got.Span(NodeID(u), v)) {
				t.Fatalf("span (%d,%d) differs: %v != %v",
					u, v, got.Span(NodeID(u), v), want.Span(NodeID(u), v))
			}
			if want.Reaches(NodeID(u), v) != got.Reaches(NodeID(u), v) {
				t.Fatalf("reachability (%d,%d) differs", u, v)
			}
		}
	}
	wp, gp := want.ComputeParams(), got.ComputeParams()
	if wp != gp {
		t.Fatalf("params differ: %+v != %+v", gp, wp)
	}
}

func TestCodecRoundTripPlain(t *testing.T) {
	r := rng.New(5)
	nw, err := GeometricConnected(15, 0.45, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignUniformK(nw, 8, 4, r); err != nil {
		t.Fatal(err)
	}
	assertEqualNetworks(t, nw, roundTrip(t, nw))
}

func TestCodecRoundTripWithExtensions(t *testing.T) {
	r := rng.New(6)
	nw, err := Clique(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignHomogeneous(nw, 6); err != nil {
		t.Fatal(err)
	}
	if err := RestrictSpansRandomly(nw, 2, r); err != nil {
		t.Fatal(err)
	}
	if err := DropRandomDirections(nw, 0.5, r); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, nw)
	assertEqualNetworks(t, nw, got)
	if got.Symmetric() {
		t.Fatal("asymmetry lost in round trip")
	}
}

func TestCodecRoundTripEmptySpanOverride(t *testing.T) {
	// An override that empties a span must survive (nil vs empty matters).
	nw := mustLine(t, 2)
	nw.SetAvail(0, channel.NewSet(0, 1))
	nw.SetAvail(1, channel.NewSet(0, 1))
	if err := nw.RestrictSpan(0, 1, channel.Set{}); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, nw)
	if !got.Span(0, 1).IsEmpty() {
		t.Fatalf("emptying override lost: span %v", got.Span(0, 1))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"bad version":  `{"version":99,"nodes":[],"edges":[]}`,
		"sparse ids":   `{"version":1,"nodes":[{"id":1,"channels":[0]}],"edges":[]}`,
		"bad channel":  `{"version":1,"nodes":[{"id":0,"channels":[-2]}],"edges":[]}`,
		"bad edge":     `{"version":1,"nodes":[{"id":0,"channels":[0]}],"edges":[{"from":0,"to":9}]}`,
		"no nodes":     `{"version":1,"nodes":[],"edges":[]}`,
		"huge channel": `{"version":1,"nodes":[{"id":0,"channels":[99999999]}],"edges":[]}`,
	}
	for name, text := range cases {
		if _, err := DecodeJSON(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
