package topology

import (
	"sort"

	"m2hew/internal/channel"
)

// DeriveGeometricCandidates re-derives the directed reception structure of a
// geometric snapshot without constructing a Network: nodes at their current
// positions, radius-limited adjacency found by the same grid-bucket scan
// Geometric uses (so the edge visit order — ascending first index, then
// second — matches the all-pairs scan exactly), and per-link spans computed
// as A(u) ∩ A(v) minus each endpoint's blocked set.
//
// It returns the inbound-candidate table (cands[u] in ascending From order,
// the order InboundCandidates guarantees) and the discoverable directed
// links of the snapshot sorted ascending by (From, To) — the same order
// DiscoverableLinks reports.
//
// active, if non-nil, excludes inactive endpoints from every edge; blocked,
// if non-nil, holds per-node channel sets currently unusable (e.g. occupied
// by a primary user) that are subtracted from every incident span. Links
// whose span empties out are dropped entirely. Span overrides and dropped
// directions do not apply: snapshots model plain geometric propagation.
//
// This is the per-epoch rebuild of the dynamics layer. It allocates its
// result tables (they outlive the call inside memoized epoch snapshots), so
// it is deliberately not //nd:hotpath; the per-slot reception loops that
// consume the tables remain allocation-free.
func DeriveGeometricCandidates(nodes []Node, radius float64, active []bool, blocked []channel.Set) ([][]Candidate, []Link) {
	cands := make([][]Candidate, len(nodes))
	var links []Link
	for _, e := range geometricEdges(nodes, radius) {
		i, j := e[0], e[1]
		if active != nil && (!active[i] || !active[j]) {
			continue
		}
		span := nodes[i].Avail.Intersect(nodes[j].Avail)
		if blocked != nil {
			if !blocked[i].IsEmpty() {
				span = span.Minus(blocked[i])
			}
			if !blocked[j].IsEmpty() {
				span = span.Minus(blocked[j])
			}
		}
		if span.IsEmpty() {
			continue
		}
		// Both directions share one span set; Candidate.Span is read-only by
		// contract. Appending while scanning edges in ascending (i, j) order
		// leaves every cands[u] in ascending From order: partners below u were
		// appended during their own (smaller) first-index scans, partners
		// above u during u's scan, both ascending.
		cands[i] = append(cands[i], Candidate{From: j, Span: span})
		cands[j] = append(cands[j], Candidate{From: i, Span: span})
		links = append(links, Link{From: i, To: j}, Link{From: j, To: i})
	}
	SortLinks(links)
	return cands, links
}

// SortLinks orders links ascending by (From, To) — the DiscoverableLinks
// order every coverage target uses. The dynamics layer applies it to each
// epoch's link set so growable coverage targets enumerate births in the
// same order static targets do.
func SortLinks(links []Link) {
	sort.Slice(links, func(a, b int) bool {
		if links[a].From != links[b].From {
			return links[a].From < links[b].From
		}
		return links[a].To < links[b].To
	})
}
