package topology

import (
	"fmt"
	"math"

	"m2hew/internal/rng"
)

// Geometric builds a random geometric graph: n nodes placed uniformly in the
// unit square, with an edge between every pair at Euclidean distance at most
// radius. This is the standard model for wireless ad hoc deployments and the
// default topology of the experiment suite.
//
// The pair scan runs over a spatial grid-bucket index (expected O(n) work
// for the radii the suite uses) instead of all pairs; edge order and the rng
// draw sequence are identical to the all-pairs scan, so seeded networks are
// unchanged (geometricEdgesNaive is kept as the differential-test reference).
func Geometric(n int, radius float64, r *rng.Source) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: geometric with %d nodes: %w", n, ErrNoNodes)
	}
	if radius < 0 {
		return nil, fmt.Errorf("topology: geometric radius %v is negative", radius)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i), X: r.Float64(), Y: r.Float64()}
	}
	return newNetwork(nodes, geometricEdges(nodes, radius))
}

// geometricEdges lists every pair of nodes within radius, ordered by
// ascending first index then ascending second — exactly the order of the
// all-pairs scan it replaces. The grid-bucket scan itself lives in
// visitGeometricPairs, shared with the streaming CSR builders.
func geometricEdges(nodes []Node, radius float64) [][2]NodeID {
	var edges [][2]NodeID
	visitGeometricPairs(nodes, radius, func(i, j int32) {
		edges = append(edges, [2]NodeID{NodeID(i), NodeID(j)})
	})
	return edges
}

// geometricEdgesNaive is the reference all-pairs scan, kept verbatim so
// differential tests can pin geometricEdges to it. Production code never
// calls this.
func geometricEdgesNaive(nodes []Node, radius float64) [][2]NodeID {
	var edges [][2]NodeID
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			dx, dy := nodes[i].X-nodes[j].X, nodes[i].Y-nodes[j].Y
			if math.Hypot(dx, dy) <= radius {
				edges = append(edges, [2]NodeID{NodeID(i), NodeID(j)})
			}
		}
	}
	return edges
}

// ErdosRenyi builds a G(n, p) random graph: each of the n·(n−1)/2 possible
// edges is present independently with probability p.
func ErdosRenyi(n int, p float64, r *rng.Source) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: erdos-renyi with %d nodes: %w", n, ErrNoNodes)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: erdos-renyi edge probability %v outside [0,1]", p)
	}
	nodes := abstractNodes(n)
	var edges [][2]NodeID
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				edges = append(edges, [2]NodeID{NodeID(i), NodeID(j)})
			}
		}
	}
	return newNetwork(nodes, edges)
}

// Grid builds a rows×cols lattice with 4-neighbor connectivity. Node IDs are
// row-major; coordinates reflect the lattice for visualization.
func Grid(rows, cols int) (*Network, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topology: grid %dx%d: %w", rows, cols, ErrNoNodes)
	}
	nodes := make([]Node, rows*cols)
	var edges [][2]NodeID
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			id := NodeID(row*cols + col)
			nodes[id] = Node{ID: id, X: float64(col), Y: float64(row)}
			if col+1 < cols {
				edges = append(edges, [2]NodeID{id, id + 1})
			}
			if row+1 < rows {
				edges = append(edges, [2]NodeID{id, id + NodeID(cols)})
			}
		}
	}
	return newNetwork(nodes, edges)
}

// Line builds a path of n nodes: 0—1—…—(n−1). The multi-hop worst case for
// information propagation; every interior node has degree 2.
func Line(n int) (*Network, error) {
	return Grid(1, n)
}

// Ring builds a cycle of n nodes. It requires n ≥ 3.
func Ring(n int) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs at least 3 nodes, got %d", n)
	}
	nodes := make([]Node, n)
	var edges [][2]NodeID
	for i := 0; i < n; i++ {
		angle := 2 * math.Pi * float64(i) / float64(n)
		nodes[i] = Node{ID: NodeID(i), X: math.Cos(angle), Y: math.Sin(angle)}
		edges = append(edges, [2]NodeID{NodeID(i), NodeID((i + 1) % n)})
	}
	return newNetwork(nodes, edges)
}

// Clique builds the complete graph on n nodes — the single-hop network of
// the paper's Related Work comparisons, where contention is maximal.
func Clique(n int) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: clique with %d nodes: %w", n, ErrNoNodes)
	}
	nodes := abstractNodes(n)
	var edges [][2]NodeID
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]NodeID{NodeID(i), NodeID(j)})
		}
	}
	return newNetwork(nodes, edges)
}

// Star builds a star with node 0 at the hub and n−1 leaves. The hub has the
// network's maximum degree, which stresses the Δ-dependence of the bounds.
func Star(n int) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: star with %d nodes: %w", n, ErrNoNodes)
	}
	nodes := abstractNodes(n)
	var edges [][2]NodeID
	for i := 1; i < n; i++ {
		edges = append(edges, [2]NodeID{0, NodeID(i)})
	}
	return newNetwork(nodes, edges)
}

// TwoClusterBridge builds two k-cliques joined by a single bridge edge
// between node k−1 and node k. It exhibits strong multi-hop structure: the
// bridge link must be discovered despite dense contention inside each
// cluster.
func TwoClusterBridge(k int) (*Network, error) {
	if k < 1 {
		return nil, fmt.Errorf("topology: bridge clusters need k >= 1, got %d", k)
	}
	n := 2 * k
	nodes := abstractNodes(n)
	var edges [][2]NodeID
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]NodeID{NodeID(i), NodeID(j)})
			edges = append(edges, [2]NodeID{NodeID(k + i), NodeID(k + j)})
		}
	}
	edges = append(edges, [2]NodeID{NodeID(k - 1), NodeID(k)})
	return newNetwork(nodes, edges)
}

// Pair builds the 2-node, 1-edge network — the minimal discovery instance
// used by the coverage-probability experiments, where a single link can be
// measured without interference from third parties.
func Pair() (*Network, error) {
	nodes := abstractNodes(2)
	return newNetwork(nodes, [][2]NodeID{{0, 1}})
}

// GeometricConnected retries Geometric until the graph is connected (or
// attempts are exhausted). Disconnected instances are legal for discovery —
// the algorithms are per-link — but most experiments want connected
// multi-hop networks.
func GeometricConnected(n int, radius float64, r *rng.Source, attempts int) (*Network, error) {
	if attempts <= 0 {
		attempts = 50
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		nw, err := Geometric(n, radius, r)
		if err != nil {
			return nil, err
		}
		if nw.Connected() {
			return nw, nil
		}
		lastErr = fmt.Errorf("topology: no connected geometric graph with n=%d radius=%v in %d attempts", n, radius, attempts)
	}
	return nil, lastErr
}

// Connected reports whether the communication graph is connected (ignoring
// channels).
func (nw *Network) Connected() bool {
	if nw.N() == 0 {
		return false
	}
	visited := make([]bool, nw.N())
	stack := []NodeID{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range nw.adj[u] {
			if !visited[v] {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == nw.N()
}

func abstractNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i)}
	}
	return nodes
}
