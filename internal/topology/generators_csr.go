package topology

import (
	"fmt"
	"math"
	"sort"

	"m2hew/internal/rng"
)

// visitGeometricPairs enumerates every pair of nodes within radius in
// ascending (i, j) order with i < j — exactly the order of the all-pairs
// scan — calling visit once per pair. It is the shared core of
// geometricEdges (which materializes an edge list), GeometricCSR (which
// streams the pairs into a CSR adjacency without an edge list), and
// GeometricStreamStats (which keeps only O(n) counters). The scan runs over
// a spatial grid-bucket index: cell side ≥ radius so all partners of a node
// lie in its 3×3 cell neighborhood, cols capped at ⌈√n⌉ to bound the cell
// count by O(n) when the radius is tiny.
func visitGeometricPairs(nodes []Node, radius float64, visit func(i, j int32)) {
	n := len(nodes)
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	if radius > 0 {
		if byRadius := int(1 / radius); byRadius < cols {
			cols = byRadius
		}
	}
	if cols < 1 {
		cols = 1 // radius ≥ 1: one cell, the scan degenerates to all pairs
	}
	cellOf := func(coord float64) int {
		c := int(coord * float64(cols))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	buckets := make([][]int32, cols*cols)
	for i, nd := range nodes {
		c := cellOf(nd.Y)*cols + cellOf(nd.X)
		buckets[c] = append(buckets[c], int32(i))
	}
	var cand []int32
	for i := 0; i < n; i++ {
		cx, cy := cellOf(nodes[i].X), cellOf(nodes[i].Y)
		cand = cand[:0]
		for dy := -1; dy <= 1; dy++ {
			y := cy + dy
			if y < 0 || y >= cols {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				x := cx + dx
				if x < 0 || x >= cols {
					continue
				}
				for _, j := range buckets[y*cols+x] {
					if int(j) > i {
						cand = append(cand, j)
					}
				}
			}
		}
		// Bucket visit order is spatial; restore ascending-j emission order.
		sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
		for _, j := range cand {
			dx, dy := nodes[i].X-nodes[j].X, nodes[i].Y-nodes[j].Y
			if math.Hypot(dx, dy) <= radius {
				visit(int32(i), j)
			}
		}
	}
}

// GeometricCSR builds the same random geometric graph as Geometric — node
// placement consumes the identical rng draw sequence, so a seeded network
// is indistinguishable from Geometric's — but never materializes the
// [][2]NodeID edge list or per-row append-grown adjacency slices. The pair
// scan streams twice (degree count, then fill) into a single flat NodeID
// arena whose rows are handed out as subslices; rows arrive already sorted
// (row u receives each partner v<u while the scan's outer index is v, in
// ascending v, then each v>u while the outer index is u, in ascending v),
// so no dedup map or per-row sort is needed. Peak overhead beyond the
// finished adjacency is O(n), which is what lets 100k–1M-node topologies
// fit in memory.
func GeometricCSR(n int, radius float64, r *rng.Source) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: geometric with %d nodes: %w", n, ErrNoNodes)
	}
	if radius < 0 {
		return nil, fmt.Errorf("topology: geometric radius %v is negative", radius)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i), X: r.Float64(), Y: r.Float64()}
	}

	deg := make([]int32, n+1)
	visitGeometricPairs(nodes, radius, func(i, j int32) {
		deg[i]++
		deg[j]++
	})
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	arena := make([]NodeID, off[n])
	cur := deg[:n] // reuse as fill cursors
	copy(cur, off[:n])
	visitGeometricPairs(nodes, radius, func(i, j int32) {
		arena[cur[i]] = NodeID(j)
		cur[i]++
		arena[cur[j]] = NodeID(i)
		cur[j]++
	})
	adj := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		adj[i] = arena[off[i]:off[i+1]:off[i+1]]
	}
	return &Network{nodes: nodes, adj: adj, universeStale: true}, nil
}

// GeometricConnectedCSR retries GeometricCSR until the graph is connected,
// mirroring GeometricConnected (and drawing the same rng sequence, so the
// accepted instance matches GeometricConnected's at the same seed).
func GeometricConnectedCSR(n int, radius float64, r *rng.Source, attempts int) (*Network, error) {
	if attempts <= 0 {
		attempts = 50
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		nw, err := GeometricCSR(n, radius, r)
		if err != nil {
			return nil, err
		}
		if nw.Connected() {
			return nw, nil
		}
		lastErr = fmt.Errorf("topology: no connected geometric graph with n=%d radius=%v in %d attempts", n, radius, attempts)
	}
	return nil, lastErr
}

// StreamStats summarizes a geometric instance from the streaming pair scan
// alone: degree distribution and connectivity via a union-find over visited
// pairs, with O(n) memory and no edge list, adjacency, or Network. This is
// what lets 100k+ scenarios be inspected cheaply (cmd/ndtopo -stream).
type StreamStats struct {
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	MinDegree        int     `json:"min_degree"`
	MaxDegree        int     `json:"max_degree"`
	MeanDegree       float64 `json:"mean_degree"`
	Isolated         int     `json:"isolated"`
	Components       int     `json:"components"`
	LargestComponent int     `json:"largest_component"`
}

// Connected reports whether the instance forms a single component.
func (s StreamStats) Connected() bool { return s.Components == 1 }

// GeometricStreamStats draws a geometric instance with the same rng
// sequence as Geometric/GeometricCSR and returns its StreamStats without
// building the graph.
func GeometricStreamStats(n int, radius float64, r *rng.Source) (StreamStats, error) {
	if n <= 0 {
		return StreamStats{}, fmt.Errorf("topology: geometric with %d nodes: %w", n, ErrNoNodes)
	}
	if radius < 0 {
		return StreamStats{}, fmt.Errorf("topology: geometric radius %v is negative", radius)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i), X: r.Float64(), Y: r.Float64()}
	}

	deg := make([]int32, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	edges := 0
	visitGeometricPairs(nodes, radius, func(i, j int32) {
		edges++
		deg[i]++
		deg[j]++
		ri, rj := find(i), find(j)
		if ri != rj {
			parent[ri] = rj
		}
	})

	st := StreamStats{Nodes: n, Edges: edges, MinDegree: int(deg[0]), MaxDegree: int(deg[0])}
	size := make(map[int32]int, 16)
	for i := 0; i < n; i++ {
		d := int(deg[i])
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if d == 0 {
			st.Isolated++
		}
		size[find(int32(i))]++
	}
	st.MeanDegree = 2 * float64(edges) / float64(n)
	st.Components = len(size)
	for _, sz := range size {
		if sz > st.LargestComponent {
			st.LargestComponent = sz
		}
	}
	return st, nil
}
