package topology

import (
	"fmt"
	"reflect"
	"testing"

	"m2hew/internal/rng"
)

// TestGeometricCSRMatchesGeometric pins the streaming CSR builder to the
// edge-list builder at matched seed: identical nodes (same rng draws) and
// identical sorted adjacency, so everything downstream — spans, candidate
// tables, engines — is indistinguishable.
func TestGeometricCSRMatchesGeometric(t *testing.T) {
	root := rng.New(61)
	for trial := 0; trial < 40; trial++ {
		seed := root.Uint64()
		n := int(seed%300) + 1
		radius := 0.02 + float64(seed%97)/97*0.5
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			a, err := Geometric(n, radius, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := GeometricCSR(n, radius, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
				t.Fatal("node placements differ")
			}
			if a.EdgeCount() != b.EdgeCount() {
				t.Fatalf("edge counts differ: %d vs %d", a.EdgeCount(), b.EdgeCount())
			}
			for u := 0; u < n; u++ {
				ga, gb := a.Neighbors(NodeID(u)), b.Neighbors(NodeID(u))
				if len(ga) != len(gb) {
					t.Fatalf("node %d: degree %d vs %d", u, len(ga), len(gb))
				}
				for i := range ga {
					if ga[i] != gb[i] {
						t.Fatalf("node %d: adjacency differs at %d: %v vs %v", u, i, ga, gb)
					}
				}
			}
		})
	}
}

// TestGeometricConnectedCSRMatchesRetryLoop pins the retrying variant: the
// accepted instance is the one GeometricConnected accepts at the same seed.
func TestGeometricConnectedCSRMatchesRetryLoop(t *testing.T) {
	a, err := GeometricConnected(60, 0.2, rng.New(67), 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeometricConnectedCSR(60, 0.2, rng.New(67), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) || a.EdgeCount() != b.EdgeCount() {
		t.Fatal("connected instances differ at matched seed")
	}
	if !b.Connected() {
		t.Fatal("CSR instance not connected")
	}
}

// TestGeometricStreamStatsMatchesGraph pins the O(n) streaming summary to
// the materialized graph at matched seed.
func TestGeometricStreamStatsMatchesGraph(t *testing.T) {
	root := rng.New(71)
	for trial := 0; trial < 25; trial++ {
		seed := root.Uint64()
		n := int(seed%200) + 1
		radius := 0.02 + float64(seed%89)/89*0.4
		st, err := GeometricStreamStats(n, radius, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		nw, err := Geometric(n, radius, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if st.Nodes != n || st.Edges != nw.EdgeCount() {
			t.Fatalf("trial %d: nodes/edges %d/%d, want %d/%d", trial, st.Nodes, st.Edges, n, nw.EdgeCount())
		}
		minDeg, maxDeg, isolated := -1, 0, 0
		for u := 0; u < n; u++ {
			d := len(nw.Neighbors(NodeID(u)))
			if minDeg < 0 || d < minDeg {
				minDeg = d
			}
			if d > maxDeg {
				maxDeg = d
			}
			if d == 0 {
				isolated++
			}
		}
		if st.MinDegree != minDeg || st.MaxDegree != maxDeg || st.Isolated != isolated {
			t.Fatalf("trial %d: degrees min/max/iso %d/%d/%d, want %d/%d/%d",
				trial, st.MinDegree, st.MaxDegree, st.Isolated, minDeg, maxDeg, isolated)
		}
		if st.Connected() != nw.Connected() {
			t.Fatalf("trial %d: Connected %v, want %v", trial, st.Connected(), nw.Connected())
		}
		if nw.Connected() && (st.Components != 1 || st.LargestComponent != n) {
			t.Fatalf("trial %d: components=%d largest=%d on a connected graph of %d",
				trial, st.Components, st.LargestComponent, n)
		}
	}
}

// TestInboundCandidatesMatchesNaive pins the flat shared-span table to the
// original row-at-a-time build across asymmetric drops and span overrides.
func TestInboundCandidatesMatchesNaive(t *testing.T) {
	root := rng.New(73)
	for trial := 0; trial < 50; trial++ {
		r := root.Split()
		n := r.IntN(60) + 2
		nw, err := ErdosRenyi(n, 0.25, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := AssignBernoulli(nw, r.IntN(5)+1, 0.7, r); err != nil {
			t.Fatal(err)
		}
		if r.Bernoulli(0.5) {
			if err := DropRandomDirections(nw, 0.4, r); err != nil {
				t.Fatal(err)
			}
		}
		if r.Bernoulli(0.3) {
			if err := RestrictSpansRandomly(nw, 1, r); err != nil {
				t.Fatal(err)
			}
		}
		got, want := nw.InboundCandidates(), nw.inboundCandidatesNaive()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(want))
		}
		for u := range want {
			if len(got[u]) != len(want[u]) {
				t.Fatalf("trial %d node %d: %d candidates, want %d", trial, u, len(got[u]), len(want[u]))
			}
			for i := range want[u] {
				if got[u][i].From != want[u][i].From {
					t.Fatalf("trial %d node %d cand %d: From %d, want %d",
						trial, u, i, got[u][i].From, want[u][i].From)
				}
				if !got[u][i].Span.Equal(want[u][i].Span) {
					t.Fatalf("trial %d node %d cand %d: spans differ", trial, u, i)
				}
			}
		}
	}
}
