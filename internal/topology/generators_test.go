package topology

import (
	"fmt"
	"math"
	"testing"

	"m2hew/internal/rng"
)

func TestGeometricBasics(t *testing.T) {
	r := rng.New(1)
	nw, err := Geometric(30, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 30 {
		t.Fatalf("N = %d", nw.N())
	}
	// Every edge respects the radius; every non-edge exceeds it.
	for i := 0; i < nw.N(); i++ {
		for j := i + 1; j < nw.N(); j++ {
			a, b := nw.Node(NodeID(i)), nw.Node(NodeID(j))
			d := math.Hypot(a.X-b.X, a.Y-b.Y)
			adj := nw.AreNeighbors(NodeID(i), NodeID(j))
			if adj && d > 0.3 {
				t.Fatalf("edge %d-%d at distance %v > radius", i, j, d)
			}
			if !adj && d <= 0.3 {
				t.Fatalf("missing edge %d-%d at distance %v <= radius", i, j, d)
			}
		}
	}
	// Positions inside the unit square.
	for _, node := range nw.Nodes() {
		if node.X < 0 || node.X >= 1 || node.Y < 0 || node.Y >= 1 {
			t.Fatalf("node %d at (%v,%v) outside unit square", node.ID, node.X, node.Y)
		}
	}
}

func TestGeometricErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := Geometric(0, 0.5, r); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := Geometric(5, -0.1, r); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestGeometricRadiusExtremes(t *testing.T) {
	r := rng.New(2)
	full, err := Geometric(10, 2.0, r) // radius > diagonal: clique
	if err != nil {
		t.Fatal(err)
	}
	if full.EdgeCount() != 45 {
		t.Fatalf("radius 2 graph has %d edges, want 45", full.EdgeCount())
	}
	empty, err := Geometric(10, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if empty.EdgeCount() != 0 {
		t.Fatalf("radius 0 graph has %d edges, want 0", empty.EdgeCount())
	}
}

func TestErdosRenyi(t *testing.T) {
	r := rng.New(3)
	nw, err := ErdosRenyi(50, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	// Expected edges = C(50,2)·0.2 = 245; allow wide tolerance.
	if e := nw.EdgeCount(); e < 150 || e > 350 {
		t.Fatalf("G(50,0.2) has %d edges, expected ~245", e)
	}
	if _, err := ErdosRenyi(5, 1.5, r); err == nil {
		t.Fatal("p > 1 accepted")
	}
	if _, err := ErdosRenyi(0, 0.5, r); err == nil {
		t.Fatal("0 nodes accepted")
	}
	dense, err := ErdosRenyi(10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if dense.EdgeCount() != 45 {
		t.Fatalf("G(10,1) has %d edges, want 45", dense.EdgeCount())
	}
}

func TestGrid(t *testing.T) {
	nw, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 12 {
		t.Fatalf("N = %d, want 12", nw.N())
	}
	// Edges: horizontal 3·3 + vertical 2·4 = 17.
	if nw.EdgeCount() != 17 {
		t.Fatalf("edges = %d, want 17", nw.EdgeCount())
	}
	// Corner has degree 2, interior degree 4.
	if d := len(nw.Neighbors(0)); d != 2 {
		t.Fatalf("corner degree %d, want 2", d)
	}
	if d := len(nw.Neighbors(5)); d != 4 { // row 1, col 1
		t.Fatalf("interior degree %d, want 4", d)
	}
	if _, err := Grid(0, 5); err == nil {
		t.Fatal("0-row grid accepted")
	}
}

func TestLine(t *testing.T) {
	nw := mustLine(t, 5)
	if nw.EdgeCount() != 4 {
		t.Fatalf("line edges = %d, want 4", nw.EdgeCount())
	}
	if len(nw.Neighbors(0)) != 1 || len(nw.Neighbors(2)) != 2 {
		t.Fatal("line degrees wrong")
	}
	if !nw.Connected() {
		t.Fatal("line not connected")
	}
}

func TestRing(t *testing.T) {
	nw, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if nw.EdgeCount() != 6 {
		t.Fatalf("ring edges = %d, want 6", nw.EdgeCount())
	}
	for u := 0; u < 6; u++ {
		if len(nw.Neighbors(NodeID(u))) != 2 {
			t.Fatalf("ring node %d degree != 2", u)
		}
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("2-node ring accepted")
	}
}

func TestClique(t *testing.T) {
	nw, err := Clique(7)
	if err != nil {
		t.Fatal(err)
	}
	if nw.EdgeCount() != 21 {
		t.Fatalf("K7 edges = %d, want 21", nw.EdgeCount())
	}
	if _, err := Clique(0); err == nil {
		t.Fatal("empty clique accepted")
	}
	one, err := Clique(1)
	if err != nil {
		t.Fatal(err)
	}
	if one.EdgeCount() != 0 {
		t.Fatal("K1 has edges")
	}
}

func TestStar(t *testing.T) {
	nw, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Neighbors(0)) != 5 {
		t.Fatalf("hub degree %d, want 5", len(nw.Neighbors(0)))
	}
	for u := 1; u < 6; u++ {
		if len(nw.Neighbors(NodeID(u))) != 1 {
			t.Fatalf("leaf %d degree != 1", u)
		}
	}
	if _, err := Star(0); err == nil {
		t.Fatal("empty star accepted")
	}
}

func TestTwoClusterBridge(t *testing.T) {
	nw, err := TwoClusterBridge(4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 8 {
		t.Fatalf("N = %d, want 8", nw.N())
	}
	// Each K4 has 6 edges, plus the bridge.
	if nw.EdgeCount() != 13 {
		t.Fatalf("edges = %d, want 13", nw.EdgeCount())
	}
	if !nw.AreNeighbors(3, 4) {
		t.Fatal("bridge edge 3-4 missing")
	}
	if !nw.Connected() {
		t.Fatal("bridge network not connected")
	}
	if _, err := TwoClusterBridge(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPair(t *testing.T) {
	nw, err := Pair()
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 2 || nw.EdgeCount() != 1 {
		t.Fatal("Pair is not a single edge")
	}
}

func TestGeometricConnected(t *testing.T) {
	r := rng.New(9)
	nw, err := GeometricConnected(20, 0.5, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("GeometricConnected returned disconnected graph")
	}
	// Impossible request: tiny radius cannot connect 20 nodes (w.h.p.).
	if _, err := GeometricConnected(20, 0.01, r, 3); err == nil {
		t.Fatal("impossible connectivity request returned nil error")
	}
}

func TestConnected(t *testing.T) {
	line := mustLine(t, 3)
	if !line.Connected() {
		t.Fatal("line reported disconnected")
	}
	nodes := abstractNodes(3)
	disc, err := newNetwork(nodes, [][2]NodeID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if disc.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	single, err := Clique(1)
	if err != nil {
		t.Fatal(err)
	}
	if !single.Connected() {
		t.Fatal("single node reported disconnected")
	}
}

// TestGeometricEdgesMatchNaive pins the grid-bucket pair scan to the
// all-pairs reference: same positions must yield the same edge list in the
// same order, so seeded networks are unchanged by the index. The sweep
// covers radii above and below the ⌈√n⌉ cell cap, the one-cell degenerate
// case (radius ≥ 1), radius 0, and boundary coordinates.
func TestGeometricEdgesMatchNaive(t *testing.T) {
	r := rng.New(7)
	cases := []struct {
		n      int
		radius float64
	}{
		{1, 0.3}, {2, 0.5}, {10, 0}, {10, 1.5}, {10, 0.9},
		{30, 0.3}, {50, 0.15}, {100, 0.08}, {200, 0.05}, {300, 0.12},
		{64, 0.01}, {25, 0.5},
	}
	for _, c := range cases {
		nodes := make([]Node, c.n)
		for i := range nodes {
			nodes[i] = Node{ID: NodeID(i), X: r.Float64(), Y: r.Float64()}
		}
		got := geometricEdges(nodes, c.radius)
		want := geometricEdgesNaive(nodes, c.radius)
		if len(got) != len(want) {
			t.Fatalf("n=%d radius=%v: %d edges, naive has %d", c.n, c.radius, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d radius=%v: edge %d is %v, naive has %v", c.n, c.radius, i, got[i], want[i])
			}
		}
	}
	// Hand-placed boundary coordinates: exact cell edges and corners.
	nodes := []Node{
		{ID: 0, X: 0, Y: 0}, {ID: 1, X: 0.25, Y: 0.25}, {ID: 2, X: 0.5, Y: 0.5},
		{ID: 3, X: 0.75, Y: 0.75}, {ID: 4, X: 0.999999, Y: 0.999999},
		{ID: 5, X: 0.25, Y: 0.75}, {ID: 6, X: 0.5, Y: 0},
	}
	for _, radius := range []float64{0.2, 0.25, 0.354, 0.5} {
		got := geometricEdges(nodes, radius)
		want := geometricEdgesNaive(nodes, radius)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("boundary radius=%v: %v, naive has %v", radius, got, want)
		}
	}
}

// BenchmarkGeometric measures graph construction across sizes; with the
// grid-bucket scan the per-node cost should stay near-flat as n grows (the
// radius shrinks with n to hold expected degree roughly constant).
func BenchmarkGeometric(b *testing.B) {
	cases := []struct {
		name   string
		n      int
		radius float64
	}{
		{"n200", 200, 0.12},
		{"n1000", 1000, 0.055},
		{"n5000", 5000, 0.025},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Geometric(c.n, c.radius, rng.New(uint64(i)+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, err := Geometric(25, 0.3, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Geometric(25, 0.3, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCount() != b.EdgeCount() {
		t.Fatal("same seed produced different geometric graphs")
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(NodeID(u)), b.Neighbors(NodeID(u))
		if len(na) != len(nb) {
			t.Fatalf("node %d adjacency differs", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
}
