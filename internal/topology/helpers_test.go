package topology

import (
	"testing"

	"m2hew/internal/channel"
)

// parseSet parses a channel-set literal, failing the test on error.
func parseSet(t *testing.T, text string) channel.Set {
	t.Helper()
	s, err := channel.ParseSet(text)
	if err != nil {
		t.Fatalf("parse set %q: %v", text, err)
	}
	return s
}
