package topology

import (
	"math/bits"

	"m2hew/internal/channel"
)

// CandidateMasks is the channel-major, CSR-style packing of an
// InboundCandidates table: for every (listener u, channel c) pair, a bitset
// over transmitter NodeIDs v with Reaches(v, u) and c ∈ span(u, v) — the
// only nodes whose transmission on c can be decoded at u. The synchronous
// engine's batched slot resolver intersects one row against the slot's
// transmitters-on-c mask with word-level kernels (channel.OverlapResolve /
// channel.OverlapInto) instead of scanning the candidate list per listener.
//
// Rows are indexed r = u·C + c and stored packed: only the word window
// [Lo(r), Lo(r)+rowLen) that actually contains candidate bits is kept, so
// memory is proportional to candidate locality, not N²·C — the layout the
// sharded large-n engine inherits, where per-tile node ranges make windows
// narrow. Bit i of row word w is transmitter NodeID 64·(lo+w) + i, matching
// the engine's per-slot transmitter masks so the two intersect directly.
//
// Like InboundCandidates, the table snapshots the network it was derived
// from: later RestrictSpan / DropDirection / SetAvail calls are not
// reflected.
type CandidateMasks struct {
	channels int
	lo       []int32 // per row: first packed word's index in the full range
	off      []int32 // per row: start offset into words; len rows+1
	words    []uint64
}

// NewCandidateMasks packs the candidate table channel-major. channels is
// the number of channel rows per listener (max channel ID + 1: the
// engine's per-slot index uses the same bound). budgetWords caps the packed
// size: when the table would exceed it — or there is nothing to pack — nil
// is returned and the caller stays on the scalar resolver. A budget of 0
// means unbounded.
func NewCandidateMasks(cands [][]Candidate, channels, budgetWords int) *CandidateMasks {
	n := len(cands)
	if n == 0 || channels <= 0 {
		return nil
	}
	rows := n * channels

	// Pass 1: per-row word windows.
	lo := make([]int32, rows)
	hi := make([]int32, rows)
	for r := range lo {
		lo[r] = int32(n >> 6) // past any real word; hi < lo marks empty
		hi[r] = -1
	}
	for u, list := range cands {
		base := u * channels
		for _, cand := range list {
			vw := int32(int(cand.From) >> 6)
			for wi, w := range cand.Span.Words() {
				for w != 0 {
					c := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					if c >= channels {
						break
					}
					r := base + c
					if vw < lo[r] {
						lo[r] = vw
					}
					if vw > hi[r] {
						hi[r] = vw
					}
				}
			}
		}
	}

	total := 0
	off := make([]int32, rows+1)
	for r := 0; r < rows; r++ {
		if hi[r] >= lo[r] {
			total += int(hi[r]-lo[r]) + 1
		} else {
			lo[r] = 0
		}
		off[r+1] = int32(total)
	}
	if budgetWords > 0 && total > budgetWords {
		return nil
	}

	// Pass 2: fill the packed rows.
	words := make([]uint64, total)
	for u, list := range cands {
		base := u * channels
		for _, cand := range list {
			vw := int32(int(cand.From) >> 6)
			vb := uint64(1) << (uint(cand.From) & 63)
			for wi, w := range cand.Span.Words() {
				for w != 0 {
					c := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					if c >= channels {
						break
					}
					r := base + c
					words[int(off[r])+int(vw-lo[r])] |= vb
				}
			}
		}
	}
	return &CandidateMasks{channels: channels, lo: lo, off: off, words: words}
}

// Row returns listener u's packed transmitter bitset for channel c and the
// index of its first word within the full NodeID word range: bit i of
// row[w] is transmitter NodeID 64·(lo+w)+i. The row is empty when no
// transmission on c can be decoded at u. Shared storage — do not modify.
//
//nd:hotpath
func (m *CandidateMasks) Row(u NodeID, c channel.ID) (row []uint64, lo int) {
	r := int(u)*m.channels + int(c)
	return m.words[m.off[r]:m.off[r+1]], int(m.lo[r])
}

// Channels returns the number of channel rows per listener.
func (m *CandidateMasks) Channels() int { return m.channels }

// PackedWords returns the total packed word count — the table's memory
// footprint, which NewCandidateMasks bounds by its budget.
func (m *CandidateMasks) PackedWords() int { return len(m.words) }
