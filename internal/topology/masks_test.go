package topology

import (
	"fmt"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
)

// TestCandidateMasksMatchCandidates pins every (listener, channel) row to
// the candidate table it was packed from: bit v is set iff some candidate
// with From v has the channel in its span.
func TestCandidateMasksMatchCandidates(t *testing.T) {
	root := rng.New(31)
	for trial := 0; trial < 60; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			n := r.IntN(40) + 2
			universe := r.IntN(5) + 1
			nw, err := ErdosRenyi(n, 0.3, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := AssignBernoulli(nw, universe, 0.7, r); err != nil {
				t.Fatal(err)
			}
			if r.Bernoulli(0.4) {
				if err := DropRandomDirections(nw, 0.4, r); err != nil {
					t.Fatal(err)
				}
			}
			if r.Bernoulli(0.3) && universe > 1 {
				if err := RestrictSpansRandomly(nw, 1, r); err != nil {
					t.Fatal(err)
				}
			}

			cands := nw.InboundCandidates()
			channels := 0
			if id, ok := nw.Universe().Max(); ok {
				channels = int(id) + 1
			}
			if channels == 0 {
				t.Skip("no channels assigned")
			}
			m := NewCandidateMasks(cands, channels, 0)
			if m == nil {
				t.Fatal("unbudgeted build returned nil")
			}
			if m.Channels() != channels {
				t.Fatalf("Channels() = %d, want %d", m.Channels(), channels)
			}

			for u := 0; u < n; u++ {
				for c := 0; c < channels; c++ {
					want := make(map[NodeID]bool)
					for _, cand := range cands[u] {
						if cand.Span.Contains(channel.ID(c)) {
							want[cand.From] = true
						}
					}
					row, lo := m.Row(NodeID(u), channel.ID(c))
					got := make(map[NodeID]bool)
					for wi, w := range row {
						for b := 0; b < 64; b++ {
							if w&(1<<uint(b)) != 0 {
								got[NodeID((lo+wi)*64+b)] = true
							}
						}
					}
					if len(got) != len(want) {
						t.Fatalf("listener %d channel %d: mask has %d transmitters, want %d", u, c, len(got), len(want))
					}
					for v := range want {
						if !got[v] {
							t.Fatalf("listener %d channel %d: transmitter %d missing from mask", u, c, v)
						}
					}
				}
			}
		})
	}
}

// TestCandidateMasksBudget verifies the size gate: a budget below the
// packed size rejects the build, at or above accepts it.
func TestCandidateMasksBudget(t *testing.T) {
	r := rng.New(5)
	nw, err := ErdosRenyi(30, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignUniformK(nw, 4, 2, r); err != nil {
		t.Fatal(err)
	}
	m := NewCandidateMasks(nw.InboundCandidates(), 4, 0)
	if m == nil || m.PackedWords() == 0 {
		t.Fatal("expected a non-empty packed table")
	}
	if got := NewCandidateMasks(nw.InboundCandidates(), 4, m.PackedWords()-1); got != nil {
		t.Fatal("under-budget build should return nil")
	}
	if got := NewCandidateMasks(nw.InboundCandidates(), 4, m.PackedWords()); got == nil {
		t.Fatal("at-budget build should succeed")
	}
}

// TestCandidateMasksRowWindows checks the CSR packing is genuinely
// windowed: a clique of two far-apart ID clusters must not store the dead
// words between a listener's low and high neighbors unless both exist.
func TestCandidateMasksRowWindows(t *testing.T) {
	// Line topology 0-1-...-199: every row covers at most two neighbor IDs,
	// so each packed row is at most 2 words even though the range is 4.
	nw, err := Line(200)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	m := NewCandidateMasks(nw.InboundCandidates(), 1, 0)
	if m == nil {
		t.Fatal("build failed")
	}
	for u := 0; u < 200; u++ {
		row, _ := m.Row(NodeID(u), 0)
		if len(row) > 2 {
			t.Fatalf("listener %d: row spans %d words; window not trimmed", u, len(row))
		}
	}
	// 200 nodes × ≤2 words bounds the whole table well under 200×4.
	if m.PackedWords() > 400 {
		t.Fatalf("packed size %d exceeds the windowed bound", m.PackedWords())
	}
}
