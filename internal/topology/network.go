// Package topology models M²HeW network topologies: which nodes can hear
// each other, and which channels each node has available.
//
// A Network couples an undirected communication graph with per-node
// available channel sets A(u). From these it derives every parameter the
// paper's analysis uses: N (node count), S (largest available set), Δ (max
// per-channel degree), span(u,v) for each link, and ρ (minimum span-ratio,
// the paper's heterogeneity measure).
//
// Construction is two-phase: a generator builds the graph (geometric,
// Erdős–Rényi, grid, line, ring, clique, star, bridge), then a channel
// assigner decorates it with available sets (homogeneous, uniform subsets,
// Bernoulli subsets, spatial primary-user exclusion, or block-overlap with a
// controlled span-ratio). This mirrors how a real deployment decomposes:
// radio range determines the graph, spectrum sensing determines the sets.
package topology

import (
	"errors"
	"fmt"
	"sort"

	"m2hew/internal/channel"
)

// NodeID identifies a node; IDs are dense indexes 0..N-1.
type NodeID int

// Node is one radio node.
type Node struct {
	ID NodeID `json:"id"`
	// X, Y are plane coordinates for spatially generated networks; zero for
	// abstract graphs.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Avail is the node's available channel set A(u).
	Avail channel.Set `json:"-"`
}

// Link is a directed link from one node to another. Discovery is directional
// in the paper — (u,v) and (v,u) are covered separately — so the simulator
// tracks directed links throughout.
type Link struct {
	From NodeID `json:"from"`
	To   NodeID `json:"to"`
}

// Network is an immutable-after-build M²HeW network instance.
type Network struct {
	nodes []Node
	adj   [][]NodeID // sorted adjacency lists
	// universe caches the union of all Avail sets. universeStale defers the
	// O(n) recomputation to the next Universe() read: assigners call
	// SetAvail once per node, and an eager refresh there would make bulk
	// channel assignment O(n²) — minutes at 100k nodes.
	universe      channel.Set
	universeStale bool
	// spanOverride optionally restricts the span of specific undirected
	// edges below A(u)∩A(v), modeling diverse propagation characteristics
	// (an extension the paper mentions in Section II). Keys are canonical
	// (min,max) pairs.
	spanOverride map[[2]NodeID]channel.Set
	// dropped marks asymmetric directions: dropped[{v,u}] means v's
	// transmissions do not reach u even though u's reach v — the
	// asymmetric-communication-graph extension of the paper's Section V.
	// Keys are ordered (from, to) pairs.
	dropped map[[2]NodeID]bool
}

// ErrNoNodes reports construction of an empty network.
var ErrNoNodes = errors.New("topology: network has no nodes")

// newNetwork wires the base structure; generators use it.
func newNetwork(nodes []Node, edges [][2]NodeID) (*Network, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	n := len(nodes)
	for i, node := range nodes {
		if int(node.ID) != i {
			return nil, fmt.Errorf("topology: node %d has ID %d; IDs must be dense", i, node.ID)
		}
	}
	adj := make([][]NodeID, n)
	seen := make(map[[2]NodeID]bool, len(edges))
	for _, e := range edges {
		a, b := e[0], e[1]
		if a == b {
			return nil, fmt.Errorf("topology: self-loop at node %d", a)
		}
		if int(a) < 0 || int(a) >= n || int(b) < 0 || int(b) >= n {
			return nil, fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", a, b, n)
		}
		key := canonicalEdge(a, b)
		if seen[key] {
			continue
		}
		seen[key] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, neighbors := range adj {
		sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	}
	return &Network{nodes: nodes, adj: adj, universeStale: true}, nil
}

func canonicalEdge(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.nodes) }

// Node returns node u. It panics for out-of-range IDs, which indicate a
// construction bug.
func (nw *Network) Node(u NodeID) Node {
	return nw.nodes[u]
}

// Nodes returns a copy of the node slice.
func (nw *Network) Nodes() []Node {
	out := make([]Node, len(nw.nodes))
	copy(out, nw.nodes)
	return out
}

// Universe returns the universal channel set (union of all available sets).
// The first read after a SetAvail recomputes the cached union, so the first
// call must not race with other Network accesses; every engine resolves it
// during single-threaded setup.
func (nw *Network) Universe() channel.Set {
	if nw.universeStale {
		nw.refreshUniverse()
		nw.universeStale = false
	}
	return nw.universe.Clone()
}

// Avail returns A(u). The returned set shares storage with the network and
// must not be modified; Clone it first.
func (nw *Network) Avail(u NodeID) channel.Set { return nw.nodes[u].Avail }

// Neighbors returns the sorted neighbor list of u. The returned slice must
// not be modified.
func (nw *Network) Neighbors(u NodeID) []NodeID { return nw.adj[u] }

// AreNeighbors reports whether u and v share an edge.
func (nw *Network) AreNeighbors(u, v NodeID) bool {
	neighbors := nw.adj[u]
	i := sort.Search(len(neighbors), func(i int) bool { return neighbors[i] >= v })
	return i < len(neighbors) && neighbors[i] == v
}

// Span returns span(u,v): the channels on which the link between u and v can
// operate. Under the paper's similar-propagation assumption this equals
// A(u)∩A(v); a span override (RestrictSpan) can shrink it further. The empty
// set is returned for non-adjacent pairs.
func (nw *Network) Span(u, v NodeID) channel.Set {
	if !nw.AreNeighbors(u, v) {
		return channel.Set{}
	}
	span := nw.nodes[u].Avail.Intersect(nw.nodes[v].Avail)
	if nw.spanOverride != nil {
		if mask, ok := nw.spanOverride[canonicalEdge(u, v)]; ok {
			span = span.Intersect(mask)
		}
	}
	return span
}

// RestrictSpan limits the span of the undirected edge {u,v} to mask
// (intersected with A(u)∩A(v)), modeling channel-dependent propagation. It
// returns an error if u and v are not adjacent.
func (nw *Network) RestrictSpan(u, v NodeID, mask channel.Set) error {
	if !nw.AreNeighbors(u, v) {
		return fmt.Errorf("topology: restrict span of non-edge (%d,%d)", u, v)
	}
	if nw.spanOverride == nil {
		nw.spanOverride = make(map[[2]NodeID]channel.Set)
	}
	nw.spanOverride[canonicalEdge(u, v)] = mask.Clone()
	return nil
}

// Reaches reports whether a transmission by v can arrive at u: the two are
// adjacent and the v→u direction has not been dropped. For symmetric
// networks (no DropDirection calls) this equals AreNeighbors.
func (nw *Network) Reaches(v, u NodeID) bool {
	if !nw.AreNeighbors(v, u) {
		return false
	}
	return !nw.dropped[[2]NodeID{v, u}]
}

// DropDirection makes the link asymmetric: v's transmissions no longer
// reach u (u's transmissions still reach v unless dropped separately).
// Dropping both directions of an edge effectively removes it. It returns an
// error if u and v are not adjacent.
func (nw *Network) DropDirection(v, u NodeID) error {
	if !nw.AreNeighbors(v, u) {
		return fmt.Errorf("topology: drop direction of non-edge (%d,%d)", v, u)
	}
	if nw.dropped == nil {
		nw.dropped = make(map[[2]NodeID]bool)
	}
	nw.dropped[[2]NodeID{v, u}] = true
	return nil
}

// Symmetric reports whether no direction has been dropped.
func (nw *Network) Symmetric() bool { return len(nw.dropped) == 0 }

// SetAvail replaces A(u) and refreshes the universal set. Channel assigners
// use it during construction.
func (nw *Network) SetAvail(u NodeID, a channel.Set) {
	nw.nodes[u].Avail = a.Clone()
	nw.universeStale = true
}

func (nw *Network) refreshUniverse() {
	var u channel.Set
	for _, node := range nw.nodes {
		u = u.Union(node.Avail)
	}
	nw.universe = u
}

// DirectedLinks returns every directed link (u,v) whose transmissions can
// arrive (adjacent, direction not dropped), regardless of span. Order is
// deterministic: ascending (From, To).
func (nw *Network) DirectedLinks() []Link {
	var links []Link
	for u := range nw.nodes {
		for _, v := range nw.adj[u] {
			if !nw.Reaches(NodeID(u), v) {
				continue
			}
			links = append(links, Link{From: NodeID(u), To: v})
		}
	}
	return links
}

// DiscoverableLinks returns the directed links with non-empty span — the
// links any neighbor-discovery algorithm can possibly cover, and therefore
// the completion target of every experiment.
func (nw *Network) DiscoverableLinks() []Link {
	var links []Link
	for _, l := range nw.DirectedLinks() {
		if !nw.Span(l.From, l.To).IsEmpty() {
			links = append(links, l)
		}
	}
	return links
}

// Candidate is one potential transmitter toward a fixed receiver: a
// neighbor From whose transmissions can arrive, paired with the link's
// channel span resolved once at construction time. Engines iterate
// candidate lists in their reception hot loops instead of re-querying
// Neighbors/Reaches/Span (two binary searches plus a set allocation) per
// slot.
type Candidate struct {
	// From is the potential transmitter.
	From NodeID
	// Span is span(receiver, From): the channels on which From's
	// transmissions can be decoded by the receiver. Shared storage — do
	// not modify.
	Span channel.Set
}

// InboundCandidates returns, for every receiver u, the neighbors v with
// Reaches(v, u) and a non-empty span, each with span(u,v) precomputed —
// the only nodes whose transmissions can ever be decoded at u. Lists are
// in ascending From order (the same order Neighbors reports), so a
// resolver walking a candidate list visits transmitters exactly as one
// walking Neighbors with per-slot Reaches/Span queries would. The table
// snapshots the network: calls to RestrictSpan, DropDirection or SetAvail
// after construction are not reflected.
//
// Rows are subslices of one flat arena, and span(u,v) — symmetric by
// definition — is resolved once per undirected edge and shared by both
// directions' entries (Candidate.Span is already shared-storage by
// contract). Relative to the row-at-a-time build this halves the span
// intersections and replaces O(n) append-grown slices with two O(E)
// allocations, which is what keeps the table affordable at n≥100k.
// inboundCandidatesNaive is the differential-test reference.
func (nw *Network) InboundCandidates() [][]Candidate {
	n := len(nw.nodes)
	// Pass 1: resolve each undirected edge's span once, in ascending
	// (u, v>u) order, and count the surviving entries per receiver row.
	spans := make([]channel.Set, 0, nw.EdgeCount())
	counts := make([]int32, n+1)
	for u := range nw.nodes {
		uid := NodeID(u)
		for _, v := range nw.adj[u] {
			if v <= uid {
				continue
			}
			span := nw.Span(uid, v)
			spans = append(spans, span)
			if span.IsEmpty() {
				continue
			}
			if nw.Reaches(v, uid) {
				counts[u]++
			}
			if nw.Reaches(uid, v) {
				counts[v]++
			}
		}
	}
	off := make([]int32, n+1)
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + counts[u]
	}
	arena := make([]Candidate, off[n])
	// Pass 2: scatter both directions of each edge through per-row cursors.
	// Row u receives each transmitter v<u while the outer index is v
	// (ascending v), then each v>u while the outer index is u (ascending
	// adjacency order), so rows come out in ascending From order without a
	// sort.
	cur := counts[:n]
	copy(cur, off[:n])
	ei := 0
	for u := range nw.nodes {
		uid := NodeID(u)
		for _, v := range nw.adj[u] {
			if v <= uid {
				continue
			}
			span := spans[ei]
			ei++
			if span.IsEmpty() {
				continue
			}
			if nw.Reaches(v, uid) {
				arena[cur[u]] = Candidate{From: v, Span: span}
				cur[u]++
			}
			if nw.Reaches(uid, v) {
				arena[cur[v]] = Candidate{From: uid, Span: span}
				cur[v]++
			}
		}
	}
	table := make([][]Candidate, n)
	for u := 0; u < n; u++ {
		table[u] = arena[off[u]:off[u+1]:off[u+1]]
	}
	return table
}

// inboundCandidatesNaive is the original row-at-a-time build, kept verbatim
// as the differential-test reference for the flat shared-span
// InboundCandidates. Production code never calls this.
func (nw *Network) inboundCandidatesNaive() [][]Candidate {
	table := make([][]Candidate, len(nw.nodes))
	for u := range nw.nodes {
		uid := NodeID(u)
		var cands []Candidate
		for _, v := range nw.adj[u] {
			if !nw.Reaches(v, uid) {
				continue
			}
			span := nw.Span(uid, v)
			if span.IsEmpty() {
				continue
			}
			cands = append(cands, Candidate{From: v, Span: span})
		}
		table[u] = cands
	}
	return table
}

// DegreeOn returns Δ(u,c): the number of neighbors whose transmissions can
// arrive at u on channel c, i.e. nodes v with Reaches(v,u) and c ∈
// span(u,v). This in-degree is the contention-relevant quantity: it counts
// the transmitters that can collide at u.
func (nw *Network) DegreeOn(u NodeID, c channel.ID) int {
	d := 0
	for _, v := range nw.adj[u] {
		if nw.Reaches(v, u) && nw.Span(u, v).Contains(c) {
			d++
		}
	}
	return d
}

// Validate checks structural invariants: node IDs dense (guaranteed by
// construction), adjacency symmetric, every node has a non-empty available
// set, and every edge has a non-empty span. The last two conditions are what
// channel assigners must establish; Validate is how tests and tools audit
// them.
func (nw *Network) Validate() error {
	for u := range nw.nodes {
		for _, v := range nw.adj[u] {
			if !nw.AreNeighbors(v, NodeID(u)) {
				return fmt.Errorf("topology: asymmetric adjacency: %d->%d present, reverse missing", u, v)
			}
		}
		if nw.nodes[u].Avail.IsEmpty() {
			return fmt.Errorf("topology: node %d has empty available channel set", u)
		}
	}
	for _, l := range nw.DirectedLinks() {
		if nw.Span(l.From, l.To).IsEmpty() {
			return fmt.Errorf("topology: edge {%d,%d} has empty span", l.From, l.To)
		}
	}
	return nil
}

// EdgeCount returns the number of undirected edges.
func (nw *Network) EdgeCount() int {
	total := 0
	for _, neighbors := range nw.adj {
		total += len(neighbors)
	}
	return total / 2
}
