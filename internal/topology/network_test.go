package topology

import (
	"testing"

	"m2hew/internal/channel"
)

func mustLine(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := Line(n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkRejectsEmpty(t *testing.T) {
	if _, err := newNetwork(nil, nil); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestNewNetworkRejectsSelfLoop(t *testing.T) {
	nodes := abstractNodes(2)
	if _, err := newNetwork(nodes, [][2]NodeID{{0, 0}}); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestNewNetworkRejectsOutOfRangeEdge(t *testing.T) {
	nodes := abstractNodes(2)
	if _, err := newNetwork(nodes, [][2]NodeID{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestNewNetworkRejectsBadIDs(t *testing.T) {
	nodes := []Node{{ID: 1}, {ID: 0}}
	if _, err := newNetwork(nodes, nil); err == nil {
		t.Fatal("non-dense IDs accepted")
	}
}

func TestDuplicateEdgesDeduplicated(t *testing.T) {
	nodes := abstractNodes(2)
	nw, err := newNetwork(nodes, [][2]NodeID{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if nw.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", nw.EdgeCount())
	}
	if len(nw.Neighbors(0)) != 1 {
		t.Fatalf("node 0 has %d neighbors, want 1", len(nw.Neighbors(0)))
	}
}

func TestAdjacencySymmetricAndSorted(t *testing.T) {
	nw := mustLine(t, 5)
	for u := 0; u < nw.N(); u++ {
		prev := NodeID(-1)
		for _, v := range nw.Neighbors(NodeID(u)) {
			if v <= prev {
				t.Fatalf("neighbors of %d not sorted: %v", u, nw.Neighbors(NodeID(u)))
			}
			prev = v
			if !nw.AreNeighbors(v, NodeID(u)) {
				t.Fatalf("asymmetric adjacency %d-%d", u, v)
			}
		}
	}
}

func TestAreNeighbors(t *testing.T) {
	nw := mustLine(t, 4)
	if !nw.AreNeighbors(1, 2) {
		t.Fatal("1-2 adjacency missing on a line")
	}
	if nw.AreNeighbors(0, 3) {
		t.Fatal("0-3 falsely adjacent on a line")
	}
}

func TestSpanIsIntersection(t *testing.T) {
	nw := mustLine(t, 2)
	nw.SetAvail(0, channel.NewSet(1, 2, 3))
	nw.SetAvail(1, channel.NewSet(2, 3, 4))
	want := channel.NewSet(2, 3)
	if got := nw.Span(0, 1); !got.Equal(want) {
		t.Fatalf("span = %v, want %v", got, want)
	}
	// Non-adjacent pairs have empty span.
	nw3 := mustLine(t, 3)
	nw3.SetAvail(0, channel.NewSet(1))
	nw3.SetAvail(2, channel.NewSet(1))
	if !nw3.Span(0, 2).IsEmpty() {
		t.Fatal("non-adjacent pair has non-empty span")
	}
}

func TestRestrictSpan(t *testing.T) {
	nw := mustLine(t, 2)
	nw.SetAvail(0, channel.NewSet(1, 2, 3))
	nw.SetAvail(1, channel.NewSet(1, 2, 3))
	if err := nw.RestrictSpan(0, 1, channel.NewSet(2)); err != nil {
		t.Fatal(err)
	}
	if got := nw.Span(0, 1); !got.Equal(channel.NewSet(2)) {
		t.Fatalf("restricted span = %v, want {2}", got)
	}
	// Symmetric lookup.
	if got := nw.Span(1, 0); !got.Equal(channel.NewSet(2)) {
		t.Fatalf("reverse restricted span = %v, want {2}", got)
	}
	nw3 := mustLine(t, 3)
	if err := nw3.RestrictSpan(0, 2, channel.NewSet(1)); err == nil {
		t.Fatal("RestrictSpan on non-edge returned nil error")
	}
}

func TestDirectedLinks(t *testing.T) {
	nw := mustLine(t, 3)
	links := nw.DirectedLinks()
	if len(links) != 4 { // 2 edges × 2 directions
		t.Fatalf("got %d directed links, want 4", len(links))
	}
	seen := make(map[Link]bool)
	for _, l := range links {
		seen[l] = true
	}
	for _, want := range []Link{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !seen[want] {
			t.Fatalf("missing link %v", want)
		}
	}
}

func TestDiscoverableLinksExcludesEmptySpan(t *testing.T) {
	nw := mustLine(t, 3)
	nw.SetAvail(0, channel.NewSet(1))
	nw.SetAvail(1, channel.NewSet(1, 2))
	nw.SetAvail(2, channel.NewSet(3)) // no overlap with node 1
	links := nw.DiscoverableLinks()
	if len(links) != 2 {
		t.Fatalf("got %d discoverable links, want 2: %v", len(links), links)
	}
}

func TestDegreeOn(t *testing.T) {
	nw, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetAvail(0, channel.NewSet(1, 2))
	nw.SetAvail(1, channel.NewSet(1))
	nw.SetAvail(2, channel.NewSet(1, 2))
	nw.SetAvail(3, channel.NewSet(2))
	if got := nw.DegreeOn(0, 1); got != 2 {
		t.Fatalf("Δ(hub, ch1) = %d, want 2", got)
	}
	if got := nw.DegreeOn(0, 2); got != 2 {
		t.Fatalf("Δ(hub, ch2) = %d, want 2", got)
	}
	if got := nw.DegreeOn(1, 1); got != 1 {
		t.Fatalf("Δ(leaf1, ch1) = %d, want 1", got)
	}
	if got := nw.DegreeOn(1, 2); got != 0 {
		t.Fatalf("Δ(leaf1, ch2) = %d, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	nw := mustLine(t, 2)
	if err := nw.Validate(); err == nil {
		t.Fatal("validation passed with empty available sets")
	}
	nw.SetAvail(0, channel.NewSet(1))
	nw.SetAvail(1, channel.NewSet(2))
	if err := nw.Validate(); err == nil {
		t.Fatal("validation passed with empty span")
	}
	nw.SetAvail(1, channel.NewSet(1, 2))
	if err := nw.Validate(); err != nil {
		t.Fatalf("valid network failed validation: %v", err)
	}
}

func TestUniverseIsUnion(t *testing.T) {
	nw := mustLine(t, 2)
	nw.SetAvail(0, channel.NewSet(1, 2))
	nw.SetAvail(1, channel.NewSet(2, 7))
	if got := nw.Universe(); !got.Equal(channel.NewSet(1, 2, 7)) {
		t.Fatalf("universe = %v", got)
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	nw := mustLine(t, 2)
	nodes := nw.Nodes()
	nodes[0].ID = 99
	if nw.Node(0).ID != 0 {
		t.Fatal("mutating Nodes() copy affected network")
	}
}
