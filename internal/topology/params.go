package topology

import (
	"fmt"
	"math"
)

// Params are the derived analysis parameters of a network, exactly the
// quantities in the paper's Section II. The discovery algorithms do not read
// these (the paper's nodes don't know N, S or ρ); they exist for bound
// computation and experiment reporting.
type Params struct {
	// N is the number of nodes.
	N int `json:"n"`
	// UniverseSize is |universal channel set|.
	UniverseSize int `json:"universeSize"`
	// S is the size of the largest available channel set, max_u |A(u)|.
	S int `json:"s"`
	// Delta is the maximum degree of any node on any channel,
	// max_u max_{c∈A(u)} Δ(u,c).
	Delta int `json:"delta"`
	// MaxGraphDegree is the plain graph degree maximum (≥ Delta).
	MaxGraphDegree int `json:"maxGraphDegree"`
	// Rho is the minimum span-ratio over all directed links:
	// min over links (u,v) of |span(u,v)| / |A(v)|. It lies in [1/S, 1];
	// 1 means fully homogeneous. Rho is 1 (vacuously) for edgeless networks.
	Rho float64 `json:"rho"`
	// Edges is the number of undirected edges; DirectedLinks = 2·Edges.
	Edges int `json:"edges"`
	// DiscoverableLinks counts directed links with non-empty span.
	DiscoverableLinks int `json:"discoverableLinks"`
	// EmptySpanLinks counts directed links no algorithm can cover.
	EmptySpanLinks int `json:"emptySpanLinks"`
}

// ComputeParams derives Params from the network.
func (nw *Network) ComputeParams() Params {
	p := Params{
		N:            nw.N(),
		UniverseSize: nw.Universe().Size(),
		Rho:          1,
		Edges:        nw.EdgeCount(),
	}
	for u := range nw.nodes {
		if size := nw.nodes[u].Avail.Size(); size > p.S {
			p.S = size
		}
		if d := len(nw.adj[u]); d > p.MaxGraphDegree {
			p.MaxGraphDegree = d
		}
		for _, c := range nw.nodes[u].Avail.IDs() {
			if d := nw.DegreeOn(NodeID(u), c); d > p.Delta {
				p.Delta = d
			}
		}
	}
	sawLink := false
	for _, l := range nw.DirectedLinks() {
		span := nw.Span(l.From, l.To)
		if span.IsEmpty() {
			p.EmptySpanLinks++
			continue
		}
		p.DiscoverableLinks++
		// Paper: span-ratio of (u,v) is |span(u,v)| / |A(v)|.
		ratio := float64(span.Size()) / float64(nw.nodes[l.To].Avail.Size())
		if !sawLink || ratio < p.Rho {
			p.Rho = ratio
			sawLink = true
		}
	}
	return p
}

// CheckRhoBounds verifies the paper's claim that the span-ratio of any link
// lies in [1/S, 1]; it returns an error naming the violation if any. This is
// an internal consistency audit used by tests.
func (p Params) CheckRhoBounds() error {
	if p.DiscoverableLinks == 0 {
		return nil
	}
	lo := 1 / float64(p.S)
	if p.Rho < lo-1e-12 || p.Rho > 1+1e-12 {
		return fmt.Errorf("topology: rho %v outside [1/S=%v, 1]", p.Rho, lo)
	}
	return nil
}

// String renders the parameters compactly for logs and tool output.
func (p Params) String() string {
	rho := p.Rho
	if math.IsNaN(rho) {
		rho = 0
	}
	return fmt.Sprintf("N=%d U=%d S=%d Δ=%d deg=%d ρ=%.3f edges=%d links=%d (+%d undiscoverable)",
		p.N, p.UniverseSize, p.S, p.Delta, p.MaxGraphDegree, rho, p.Edges, p.DiscoverableLinks, p.EmptySpanLinks)
}
