package topology

import (
	"fmt"
	"math"
	"math/bits"

	"m2hew/internal/channel"
)

// Tiling partitions a network's nodes into a cols×rows grid of spatial
// tiles, the unit of parallelism of the sharded synchronous engine. The
// engine resolves each tile's listeners on its own worker; because radio
// interference is local (a transmission reaches only nodes within radius),
// a tile whose cell side is at least the connection radius only ever hears
// transmitters from its own 3×3 tile neighborhood — the halo — so one
// barrier per slot phase suffices to exchange everything a tile needs.
//
// The tiling itself never assumes the side≥radius property: it just
// partitions by coordinates. Whether every edge really stays within one
// tile boundary is verified structurally when the candidate table is packed
// into halo-local masks (NewTileMasks returns nil on any violation), so a
// mis-sized tiling degrades to the single-threaded engine instead of
// corrupting results.
//
// Halo word space: each tile t owns a word-aligned segment per neighborhood
// tile (including itself), in ascending tile order. A neighbor s's segment
// holds s's nodes as a little bitset — bit i of segment word w is the node
// at s's local index 64·w+i, where local indexes number s's nodes in
// ascending NodeID order. Word alignment means publishing a halo is a
// straight word copy of the neighbor's local transmitter mask, no shifting.
type Tiling struct {
	cols, rows int
	n          int

	tileOf  []int32  // node -> tile index (row-major: ty*cols+tx)
	localOf []int32  // node -> local index within its tile (ascending-ID order)
	order   []NodeID // nodes grouped by tile, ascending ID within each tile
	off     []int32  // tile -> start index into order; len tiles+1

	// Halo layout, per tile: the existing tiles of the 3×3 neighborhood in
	// ascending tile order (always including the tile itself), and the word
	// offset of each neighbor's segment in the tile's halo word space (one
	// extra entry: the total halo word count).
	haloTiles [][]int32
	haloSegs  [][]int32
}

// NewTiling partitions nw's nodes into a cols×rows grid over the bounding
// box of their coordinates. Tiles may be empty; nodes exactly on the upper
// boundary land in the last tile. For the sharded engine to stay exact the
// cell side must be at least the connection radius (use TilingByRadius);
// a violation is caught downstream by NewTileMasks, never silently wrong.
func NewTiling(nw *Network, cols, rows int) (*Tiling, error) {
	if nw == nil {
		return nil, fmt.Errorf("topology: tiling needs a network")
	}
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("topology: tiling grid %dx%d must be positive", cols, rows)
	}
	n := nw.N()
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for u := 0; u < n; u++ {
		nd := nw.Node(NodeID(u))
		minX, maxX = math.Min(minX, nd.X), math.Max(maxX, nd.X)
		minY, maxY = math.Min(minY, nd.Y), math.Max(maxY, nd.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	cellOf := func(coord, lo, span float64, cells int) int {
		if span <= 0 {
			return 0
		}
		c := int((coord - lo) / span * float64(cells))
		if c < 0 {
			c = 0
		}
		if c >= cells {
			c = cells - 1
		}
		return c
	}

	tiles := cols * rows
	tl := &Tiling{
		cols:    cols,
		rows:    rows,
		n:       n,
		tileOf:  make([]int32, n),
		localOf: make([]int32, n),
		order:   make([]NodeID, n),
		off:     make([]int32, tiles+1),
	}
	counts := make([]int32, tiles)
	for u := 0; u < n; u++ {
		nd := nw.Node(NodeID(u))
		t := cellOf(nd.Y, minY, spanY, rows)*cols + cellOf(nd.X, minX, spanX, cols)
		tl.tileOf[u] = int32(t)
		counts[t]++
	}
	for t := 0; t < tiles; t++ {
		tl.off[t+1] = tl.off[t] + counts[t]
	}
	fill := make([]int32, tiles)
	copy(fill, tl.off[:tiles])
	// Ascending u keeps each tile's slice in ascending NodeID order.
	for u := 0; u < n; u++ {
		t := tl.tileOf[u]
		tl.localOf[u] = fill[t] - tl.off[t]
		tl.order[fill[t]] = NodeID(u)
		fill[t]++
	}

	tl.haloTiles = make([][]int32, tiles)
	tl.haloSegs = make([][]int32, tiles)
	for ty := 0; ty < rows; ty++ {
		for tx := 0; tx < cols; tx++ {
			t := ty*cols + tx
			// Row-major scan of the 3×3 neighborhood yields ascending tile
			// indexes directly.
			var hood []int32
			for dy := -1; dy <= 1; dy++ {
				y := ty + dy
				if y < 0 || y >= rows {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					x := tx + dx
					if x < 0 || x >= cols {
						continue
					}
					hood = append(hood, int32(y*cols+x))
				}
			}
			segs := make([]int32, len(hood)+1)
			for j, s := range hood {
				segs[j+1] = segs[j] + int32(tl.TileWords(int(s)))
			}
			tl.haloTiles[t] = hood
			tl.haloSegs[t] = segs
		}
	}
	return tl, nil
}

// TilingByRadius builds a tiling whose cell side is at least radius — the
// exactness precondition of the sharded engine — aiming for roughly
// targetTiles tiles. The grid is square; with a tiny target the whole
// network becomes one tile, which is legal (the engine degenerates to one
// worker). radius must be positive; coordinates are assumed to span at most
// the unit square (the geometric generators'), so cols is capped at
// ⌊1/radius⌋.
func TilingByRadius(nw *Network, radius float64, targetTiles int) (*Tiling, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("topology: tiling radius %v must be positive", radius)
	}
	if targetTiles < 1 {
		targetTiles = 1
	}
	cols := int(math.Sqrt(float64(targetTiles)))
	if cols < 1 {
		cols = 1
	}
	if byRadius := int(1 / radius); byRadius < cols {
		cols = byRadius
	}
	if cols < 1 {
		cols = 1
	}
	return NewTiling(nw, cols, cols)
}

// Tiles returns the number of grid cells (including empty ones).
func (tl *Tiling) Tiles() int { return tl.cols * tl.rows }

// Cols and Rows return the grid dimensions.
func (tl *Tiling) Cols() int { return tl.cols }

// Rows returns the grid's row count.
func (tl *Tiling) Rows() int { return tl.rows }

// N returns the number of nodes partitioned.
func (tl *Tiling) N() int { return tl.n }

// TileNodes returns tile t's nodes in ascending NodeID order — the order
// that defines each node's local index. Shared storage; do not modify.
func (tl *Tiling) TileNodes(t int) []NodeID {
	return tl.order[tl.off[t]:tl.off[t+1]]
}

// TileOf returns the tile that owns node u.
func (tl *Tiling) TileOf(u NodeID) int { return int(tl.tileOf[u]) }

// LocalIndex returns u's bit position within its tile's segment.
func (tl *Tiling) LocalIndex(u NodeID) int { return int(tl.localOf[u]) }

// TileWords returns the word width of tile t's segment: ⌈nodes/64⌉.
func (tl *Tiling) TileWords(t int) int {
	return (int(tl.off[t+1]-tl.off[t]) + 63) / 64
}

// HaloTiles returns the tiles of t's 3×3 neighborhood (ascending, always
// including t itself). Shared storage; do not modify.
func (tl *Tiling) HaloTiles(t int) []int32 { return tl.haloTiles[t] }

// HaloSegments returns, aligned with HaloTiles(t), the word offset of each
// neighbor's segment in t's halo word space; the extra final entry is the
// total halo width HaloWords(t). Shared storage; do not modify.
func (tl *Tiling) HaloSegments(t int) []int32 { return tl.haloSegs[t] }

// HaloWords returns the word width of tile t's halo space.
func (tl *Tiling) HaloWords(t int) int {
	segs := tl.haloSegs[t]
	return int(segs[len(segs)-1])
}

// HaloNode maps a bit position in tile t's halo word space back to the node
// it represents, or −1 for alignment-padding bits past a segment's last
// node.
//
//nd:hotpath
func (tl *Tiling) HaloNode(t, bit int) NodeID {
	segs := tl.haloSegs[t]
	hood := tl.haloTiles[t]
	w := int32(bit >> 6)
	// ≤9 segments: a linear scan beats binary search at this size.
	for j := len(hood) - 1; j >= 0; j-- {
		if w >= segs[j] {
			s := hood[j]
			local := (bit>>6-int(segs[j]))<<6 + bit&63
			if local >= int(tl.off[s+1]-tl.off[s]) {
				return -1
			}
			return tl.order[int(tl.off[s])+local]
		}
	}
	return -1
}

// TileMasks is the halo-local packing of an InboundCandidates table for a
// tiling: for every (listener u, channel c), a bitset over the transmitters
// that can be decoded at u, expressed in u's tile's halo word space (see
// Tiling) instead of global NodeID space. Keeping each listener's row local
// to its 3×3 neighborhood is what makes the table linear in n — the window
// a row can span is bounded by the halo width, not the network width — and
// is what the sharded engine intersects against its per-slot halo
// transmitter masks.
//
// Construction doubles as the exactness check for the tiling: a candidate
// transmitter outside the listener's halo means interference crosses more
// than one tile boundary (the tiling's cells are smaller than the radius),
// and NewTileMasks returns nil so the engine falls back to the
// single-threaded resolvers rather than miss the transmitter.
//
// Like CandidateMasks, rows are indexed r = u·C + c and stored packed to
// their populated word window [Lo(r), Lo(r)+rowLen). The table snapshots
// the candidate table it was built from.
type TileMasks struct {
	tl       *Tiling
	channels int
	lo       []int32
	off      []int32
	words    []uint64
}

// NewTileMasks packs the candidate table into halo-local rows. channels is
// the number of channel rows per listener (max channel ID + 1). budgetWords
// caps the packed size; 0 means unbounded. nil is returned when the budget
// is exceeded, when there is nothing to pack, or when any candidate lies
// outside its listener's halo (the tiling is too fine for the network's
// reach — fall back to the single-threaded engine).
func NewTileMasks(tl *Tiling, cands [][]Candidate, channels, budgetWords int) *TileMasks {
	n := len(cands)
	if tl == nil || n == 0 || n != tl.n || channels <= 0 {
		return nil
	}
	rows := n * channels

	// haloBit returns the candidate's bit position in listener tile t's
	// halo space, or -1 when the candidate's tile is outside t's halo.
	haloBit := func(t int, from NodeID) int {
		s := tl.tileOf[from]
		hood := tl.haloTiles[t]
		for j, h := range hood {
			if h == s {
				return int(tl.haloSegs[t][j])<<6 + int(tl.localOf[from])
			}
		}
		return -1
	}

	// Pass 1: per-row word windows.
	const sentinel = int32(math.MaxInt32)
	lo := make([]int32, rows)
	hi := make([]int32, rows)
	for r := range lo {
		lo[r] = sentinel
		hi[r] = -1
	}
	for u, list := range cands {
		t := int(tl.tileOf[u])
		base := u * channels
		for _, cand := range list {
			bit := haloBit(t, cand.From)
			if bit < 0 {
				return nil // halo violation: tiling too fine for this edge
			}
			vw := int32(bit >> 6)
			for wi, w := range cand.Span.Words() {
				for w != 0 {
					c := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					if c >= channels {
						break
					}
					r := base + c
					if vw < lo[r] {
						lo[r] = vw
					}
					if vw > hi[r] {
						hi[r] = vw
					}
				}
			}
		}
	}

	total := 0
	off := make([]int32, rows+1)
	for r := 0; r < rows; r++ {
		if hi[r] >= lo[r] {
			total += int(hi[r]-lo[r]) + 1
		} else {
			lo[r] = 0
		}
		off[r+1] = int32(total)
	}
	if total == 0 || (budgetWords > 0 && total > budgetWords) {
		return nil
	}

	// Pass 2: fill the packed rows.
	words := make([]uint64, total)
	for u, list := range cands {
		t := int(tl.tileOf[u])
		base := u * channels
		for _, cand := range list {
			bit := haloBit(t, cand.From)
			vw := int32(bit >> 6)
			vb := uint64(1) << uint(bit&63)
			for wi, w := range cand.Span.Words() {
				for w != 0 {
					c := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					if c >= channels {
						break
					}
					r := base + c
					words[int(off[r])+int(vw-lo[r])] |= vb
				}
			}
		}
	}
	return &TileMasks{tl: tl, channels: channels, lo: lo, off: off, words: words}
}

// Row returns listener u's packed transmitter bitset for channel c and the
// index of its first word within u's tile's halo word space: bit i of
// row[w] is the halo bit 64·(lo+w)+i (map it back with Tiling.HaloNode).
// The row is empty when nothing on c can be decoded at u. Shared storage —
// do not modify.
//
//nd:hotpath
func (m *TileMasks) Row(u NodeID, c channel.ID) (row []uint64, lo int) {
	r := int(u)*m.channels + int(c)
	return m.words[m.off[r]:m.off[r+1]], int(m.lo[r])
}

// Tiling returns the tiling the rows are expressed in.
func (m *TileMasks) Tiling() *Tiling { return m.tl }

// Channels returns the number of channel rows per listener.
func (m *TileMasks) Channels() int { return m.channels }

// PackedWords returns the total packed word count — the table's memory
// footprint, which NewTileMasks bounds by its budget.
func (m *TileMasks) PackedWords() int { return len(m.words) }
