package topology

import (
	"fmt"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
)

// TestTilingPartition pins the structural invariants of the partitioner:
// every node lands in exactly one tile, tile node lists ascend, local
// indexes match positions, halo neighborhoods ascend and include the tile
// itself, and halo segments are word-aligned and sized to their tiles.
func TestTilingPartition(t *testing.T) {
	root := rng.New(41)
	for trial := 0; trial < 40; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			n := r.IntN(200) + 1
			nw, err := Geometric(n, 0.2, r)
			if err != nil {
				t.Fatal(err)
			}
			cols := r.IntN(5) + 1
			rows := r.IntN(5) + 1
			tl, err := NewTiling(nw, cols, rows)
			if err != nil {
				t.Fatal(err)
			}
			if tl.N() != n || tl.Tiles() != cols*rows {
				t.Fatalf("N=%d Tiles=%d, want %d, %d", tl.N(), tl.Tiles(), n, cols*rows)
			}

			seen := make([]bool, n)
			total := 0
			for tile := 0; tile < tl.Tiles(); tile++ {
				nodes := tl.TileNodes(tile)
				total += len(nodes)
				for li, u := range nodes {
					if seen[u] {
						t.Fatalf("node %d in two tiles", u)
					}
					seen[u] = true
					if tl.TileOf(u) != tile {
						t.Fatalf("TileOf(%d) = %d, want %d", u, tl.TileOf(u), tile)
					}
					if tl.LocalIndex(u) != li {
						t.Fatalf("LocalIndex(%d) = %d, want %d", u, tl.LocalIndex(u), li)
					}
					if li > 0 && nodes[li-1] >= u {
						t.Fatalf("tile %d nodes not ascending: %v", tile, nodes)
					}
				}
				if want := (len(nodes) + 63) / 64; tl.TileWords(tile) != want {
					t.Fatalf("TileWords(%d) = %d, want %d", tile, tl.TileWords(tile), want)
				}

				hood := tl.HaloTiles(tile)
				segs := tl.HaloSegments(tile)
				if len(segs) != len(hood)+1 {
					t.Fatalf("tile %d: %d segments for %d halo tiles", tile, len(segs), len(hood))
				}
				self := false
				for j, s := range hood {
					if int(s) == tile {
						self = true
					}
					if j > 0 && hood[j-1] >= s {
						t.Fatalf("tile %d halo not ascending: %v", tile, hood)
					}
					if got := int(segs[j+1] - segs[j]); got != tl.TileWords(int(s)) {
						t.Fatalf("tile %d segment %d: %d words, want %d", tile, j, got, tl.TileWords(int(s)))
					}
				}
				if !self {
					t.Fatalf("tile %d halo %v omits itself", tile, hood)
				}
				if tl.HaloWords(tile) != int(segs[len(segs)-1]) {
					t.Fatalf("HaloWords(%d) = %d, want %d", tile, tl.HaloWords(tile), segs[len(segs)-1])
				}

				// HaloNode inverts (tile, bit): every real node round-trips,
				// padding bits return -1.
				for j, s := range hood {
					for li, u := range tl.TileNodes(int(s)) {
						bit := int(segs[j])<<6 + li
						if got := tl.HaloNode(tile, bit); got != u {
							t.Fatalf("HaloNode(%d,%d) = %d, want %d", tile, bit, got, u)
						}
					}
					pad := int(segs[j])<<6 + len(tl.TileNodes(int(s)))
					if pad < int(segs[j+1])<<6 {
						if got := tl.HaloNode(tile, pad); got != -1 {
							t.Fatalf("HaloNode(%d,%d) = %d, want -1 (padding)", tile, pad, got)
						}
					}
				}
			}
			if total != n {
				t.Fatalf("tiles hold %d nodes, want %d", total, n)
			}
		})
	}
}

// TestTilingGeometryRespectsRadius pins the exactness precondition the
// sharded engine relies on: with cell side ≥ radius, both endpoints of
// every edge are in each other's 3×3 halo, so TileMasks builds cleanly.
func TestTilingGeometryRespectsRadius(t *testing.T) {
	root := rng.New(43)
	for trial := 0; trial < 30; trial++ {
		r := root.Split()
		radius := 0.08 + r.Float64()*0.3
		n := r.IntN(250) + 10
		nw, err := Geometric(n, radius, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := AssignUniformK(nw, 6, 3, r); err != nil {
			t.Fatal(err)
		}
		tl, err := TilingByRadius(nw, radius, r.IntN(30)+1)
		if err != nil {
			t.Fatal(err)
		}
		channels := 6
		m := NewTileMasks(tl, nw.InboundCandidates(), channels, 0)
		if m == nil && nw.EdgeCount() > 0 {
			// Only legal cause: genuinely empty candidate table.
			empty := true
			for _, l := range nw.InboundCandidates() {
				if len(l) > 0 {
					empty = false
				}
			}
			if !empty {
				t.Fatalf("trial %d: TileMasks nil despite radius-respecting tiling (n=%d radius=%v tiles=%d)",
					trial, n, radius, tl.Tiles())
			}
		}
	}
}

// TestTileMasksMatchCandidates pins every packed halo-space row back to the
// candidate table through HaloNode: bit b of listener u's channel-c row is
// set iff HaloNode maps b to a candidate transmitter with c in its span.
func TestTileMasksMatchCandidates(t *testing.T) {
	root := rng.New(47)
	for trial := 0; trial < 40; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			n := r.IntN(120) + 2
			radius := 0.15 + r.Float64()*0.2
			nw, err := Geometric(n, radius, r)
			if err != nil {
				t.Fatal(err)
			}
			universe := r.IntN(5) + 1
			if err := AssignBernoulli(nw, universe, 0.7, r); err != nil {
				t.Fatal(err)
			}
			if r.Bernoulli(0.4) {
				if err := DropRandomDirections(nw, 0.4, r); err != nil {
					t.Fatal(err)
				}
			}
			cands := nw.InboundCandidates()
			channels := 0
			if id, ok := nw.Universe().Max(); ok {
				channels = int(id) + 1
			}
			if channels == 0 {
				t.Skip("no channels assigned")
			}
			tl, err := TilingByRadius(nw, radius, r.IntN(16)+1)
			if err != nil {
				t.Fatal(err)
			}
			m := NewTileMasks(tl, cands, channels, 0)
			if m == nil {
				t.Skip("empty candidate table")
			}
			if m.Tiling() != tl || m.Channels() != channels {
				t.Fatal("accessor mismatch")
			}

			for u := 0; u < n; u++ {
				tile := tl.TileOf(NodeID(u))
				for c := 0; c < channels; c++ {
					want := make(map[int64]bool)
					for _, cand := range cands[u] {
						if cand.Span.Contains(channel.ID(c)) {
							want[int64(cand.From)] = true
						}
					}
					row, lo := m.Row(NodeID(u), channel.ID(c))
					got := make(map[int64]bool)
					for wi, w := range row {
						for ; w != 0; w &= w - 1 {
							bit := (lo+wi)<<6 + trailingZeros64(w)
							v := tl.HaloNode(tile, bit)
							if v < 0 {
								t.Fatalf("u=%d c=%d: set bit %d maps to padding", u, c, bit)
							}
							got[int64(v)] = true
						}
					}
					if len(got) != len(want) {
						t.Fatalf("u=%d c=%d: got %d transmitters, want %d", u, c, len(got), len(want))
					}
					for k := range want {
						if !got[k] {
							t.Fatalf("u=%d c=%d: missing transmitter %d", u, c, k)
						}
					}
				}
			}
		})
	}
}

// TestTileMasksHaloViolationFallsBack pins the safety valve: a tiling finer
// than the radius (edges escaping the 3×3 halo) must yield nil, never a
// silently truncated table.
func TestTileMasksHaloViolationFallsBack(t *testing.T) {
	r := rng.New(53)
	// Long-radius graph: nearly a clique in the unit square.
	nw, err := Geometric(60, 0.9, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignUniformK(nw, 4, 2, r); err != nil {
		t.Fatal(err)
	}
	tl, err := NewTiling(nw, 8, 8) // cell side ~1/8 « radius
	if err != nil {
		t.Fatal(err)
	}
	if m := NewTileMasks(tl, nw.InboundCandidates(), 4, 0); m != nil {
		t.Fatal("expected nil TileMasks for halo-violating tiling")
	}
}

// TestTileMasksBudget pins the word-budget fallback.
func TestTileMasksBudget(t *testing.T) {
	r := rng.New(59)
	nw, err := Geometric(80, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignUniformK(nw, 4, 2, r); err != nil {
		t.Fatal(err)
	}
	tl, err := TilingByRadius(nw, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := NewTileMasks(tl, nw.InboundCandidates(), 4, 0)
	if m == nil {
		t.Fatal("unbudgeted build returned nil")
	}
	if got := NewTileMasks(tl, nw.InboundCandidates(), 4, m.PackedWords()); got == nil {
		t.Fatal("build at exactly the packed size should succeed")
	}
	if got := NewTileMasks(tl, nw.InboundCandidates(), 4, m.PackedWords()-1); got != nil {
		t.Fatal("build under the packed size should return nil")
	}
}

func trailingZeros64(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}
