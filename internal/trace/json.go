package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// kindNames maps every Kind to its wire name; the NDJSON schema uses the
// same strings as Kind.String so logs stay greppable.
var kindNames = map[Kind]string{
	KindDeliver:      "deliver",
	KindCollision:    "collision",
	KindNote:         "note",
	KindTx:           "tx",
	KindIdle:         "idle",
	KindFrameStart:   "frame-start",
	KindFrameResolve: "frame-resolve",
	KindEpoch:        "epoch",
	KindJoin:         "join",
	KindLeave:        "leave",
	KindChannelLoss:  "channel-loss",
}

// MarshalJSON renders the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	name, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("trace: cannot marshal unknown kind %d", int(k))
	}
	return json.Marshal(name)
}

// UnmarshalJSON parses a kind from its string name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("trace: kind must be a string: %w", err)
	}
	for kind, n := range kindNames {
		if n == name {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", name)
}

// JSONWriter writes one JSON object per event (NDJSON), the machine-
// readable event log consumed by cmd/ndtrace. Like Writer, it never
// aborts a simulation on a broken sink: the first error sticks and Err
// reports it after the run.
type JSONWriter struct {
	enc      *json.Encoder
	failures int
	err      error
}

// NewJSONWriter returns a Sink writing NDJSON to w.
func NewJSONWriter(w io.Writer) *JSONWriter {
	return &JSONWriter{enc: json.NewEncoder(w)}
}

// Record implements Sink.
func (t *JSONWriter) Record(e Event) {
	if err := t.enc.Encode(e); err != nil {
		t.failures++
		if t.err == nil {
			t.err = err
		}
	}
}

// Err returns nil if every write succeeded, else an error wrapping the
// first underlying write error and the total failure count.
func (t *JSONWriter) Err() error {
	if t.err == nil {
		return nil
	}
	return fmt.Errorf("trace: %d events failed to encode (first error: %w)", t.failures, t.err)
}

// ReadEvents parses an NDJSON event log (as produced by JSONWriter),
// skipping blank lines. A malformed line aborts with an error naming its
// line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace: event log line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading event log: %w", err)
	}
	return events, nil
}
