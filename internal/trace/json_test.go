package trace

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 0, Kind: KindTx, From: 1, Channel: 2},
		{Time: 0, Kind: KindDeliver, From: 1, To: 0, Channel: 2},
		{Time: 1, Kind: KindCollision, From: 1, To: 2, Channel: 0},
		{Time: 1, Kind: KindIdle, To: 3, Channel: 1},
		{Time: 2.5, Kind: KindFrameStart, From: 2, Frame: 3, Note: "rx", Channel: 1},
		{Time: 5.5, Kind: KindFrameResolve, From: 2, Frame: 3, Note: "rx", Channel: 1, Collected: 4, Delivered: 2},
		{Time: 6, Kind: KindNote, Note: "done"},
	}
	var sb strings.Builder
	w := NewJSONWriter(&sb)
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, events)
	}
}

func TestJSONKindNames(t *testing.T) {
	var sb strings.Builder
	NewJSONWriter(&sb).Record(Event{Kind: KindFrameResolve})
	if !strings.Contains(sb.String(), `"kind":"frame-resolve"`) {
		t.Fatalf("NDJSON line %q does not use the string kind name", sb.String())
	}
}

func TestReadEventsErrors(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader(`{"kind":"nope","t":0}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadEvents(strings.NewReader("not json")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("malformed line error = %v, want line number", err)
	}
	got, err := ReadEvents(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank-line log = %v, %v; want empty, nil", got, err)
	}
}

func TestJSONWriterSurfacesFirstError(t *testing.T) {
	first := errors.New("pipe closed")
	w := NewJSONWriter(&sequencedWriter{errs: []error{first}})
	w.Record(Event{Kind: KindNote})
	w.Record(Event{Kind: KindNote})
	if err := w.Err(); err == nil || !errors.Is(err, first) {
		t.Fatalf("Err = %v, want wrap of first error", err)
	}
}
