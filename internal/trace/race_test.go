package trace

// Dedicated -race stress for Ring's documented concurrency contract: one
// simulation goroutine writes while any number of goroutines read (trace.go
// promises "Ring additionally tolerates concurrent readers").

import (
	"sync"
	"testing"
)

func TestRingConcurrentReadersRace(t *testing.T) {
	const (
		capacity = 64
		writes   = 20000
		readers  = 4
	)
	r, err := NewRing(capacity)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				events := r.Events()
				if len(events) > capacity {
					t.Errorf("Events returned %d events, capacity %d", len(events), capacity)
					return
				}
				// A reader must always observe a consistent snapshot:
				// events arrive with strictly increasing Time below, so
				// any torn copy would show up as disorder.
				for j := 1; j < len(events); j++ {
					if events[j].Time <= events[j-1].Time {
						t.Errorf("snapshot out of order at %d: %v after %v", j, events[j].Time, events[j-1].Time)
						return
					}
				}
				if n := r.Len(); n > capacity {
					t.Errorf("Len = %d, capacity %d", n, capacity)
					return
				}
			}
		}()
	}

	// The single writer the contract promises.
	for i := 0; i < writes; i++ {
		r.Record(Event{Time: float64(i + 1), Kind: KindNote, Note: "stress"})
	}
	close(stop)
	wg.Wait()

	events := r.Events()
	if len(events) != capacity {
		t.Fatalf("after %d writes ring holds %d events, want full capacity %d", writes, len(events), capacity)
	}
	if got, want := events[len(events)-1].Time, float64(writes); got != want {
		t.Fatalf("newest event Time = %v, want %v", got, want)
	}
}
