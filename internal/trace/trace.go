// Package trace records structured simulation events for debugging and for
// the ndsim tool's verbose output.
//
// Engines report through the sim.Observer seam; sim.TraceObserver adapts
// any Sink from this package to it. Provided sinks: a bounded in-memory
// ring (for tests and post-mortem inspection) and a line-oriented writer
// (for live output). Sinks compose with Multi.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"m2hew/internal/channel"
	"m2hew/internal/topology"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindDeliver is a clear message reception.
	KindDeliver Kind = iota + 1
	// KindCollision is a reception attempt destroyed by interference.
	KindCollision
	// KindNote is free-form annotation from the harness.
	KindNote
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindDeliver:
		return "deliver"
	case KindCollision:
		return "collision"
	case KindNote:
		return "note"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded simulation event. Time carries the slot index for
// synchronous runs and real time for asynchronous runs.
type Event struct {
	Time    float64
	Kind    Kind
	From    topology.NodeID
	To      topology.NodeID
	Channel channel.ID
	Note    string
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case KindDeliver, KindCollision:
		return fmt.Sprintf("t=%-10.3f %-9s %d -> %d ch=%d", e.Time, e.Kind, e.From, e.To, e.Channel)
	default:
		return fmt.Sprintf("t=%-10.3f %-9s %s", e.Time, e.Kind, e.Note)
	}
}

// Sink consumes events. Implementations must be safe for use from a single
// simulation goroutine; Ring additionally tolerates concurrent readers.
type Sink interface {
	Record(Event)
}

// Nop discards all events.
type Nop struct{}

// Record implements Sink.
func (Nop) Record(Event) {}

// Ring keeps the most recent events in a bounded buffer.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
}

// NewRing returns a ring holding up to capacity events. Capacity must be
// positive.
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: ring capacity %d must be positive", capacity)
	}
	return &Ring{events: make([]Event, capacity)}, nil
}

// Record implements Sink.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Events returns the recorded events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Len returns the number of stored events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Writer writes one line per event to an io.Writer. Write errors are
// counted rather than propagated — tracing must never abort a simulation —
// and reported by Err.
type Writer struct {
	w        io.Writer
	failures int
}

// NewWriter returns a Sink writing lines to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Record implements Sink.
func (t *Writer) Record(e Event) {
	if _, err := fmt.Fprintln(t.w, e.String()); err != nil {
		t.failures++
	}
}

// Err returns a summary error if any writes failed, else nil.
func (t *Writer) Err() error {
	if t.failures == 0 {
		return nil
	}
	return fmt.Errorf("trace: %d events failed to write", t.failures)
}

// Multi fans events out to several sinks.
type Multi []Sink

// Record implements Sink.
func (m Multi) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// Format renders events as an aligned multi-line string, for test failure
// messages and tooling.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
