// Package trace records structured simulation events for debugging and for
// the ndsim tool's verbose output.
//
// Engines report through the sim.Observer seam; sim.TraceObserver adapts
// any Sink from this package to it. Provided sinks: a bounded in-memory
// ring (for tests and post-mortem inspection) and a line-oriented writer
// (for live output). Sinks compose with Multi.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"m2hew/internal/channel"
	"m2hew/internal/topology"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindDeliver is a clear message reception.
	KindDeliver Kind = iota + 1
	// KindCollision is a reception attempt destroyed by interference.
	KindCollision
	// KindNote is free-form annotation from the harness.
	KindNote
	// KindTx is one node transmitting for one synchronous slot.
	KindTx
	// KindIdle is a listening slot that heard nothing.
	KindIdle
	// KindFrameStart is one asynchronous node-local frame beginning.
	KindFrameStart
	// KindFrameResolve is a resolved asynchronous listening frame.
	KindFrameResolve
	// KindEpoch is a dynamic-run epoch boundary.
	KindEpoch
	// KindJoin is a node joining the network at an epoch boundary.
	KindJoin
	// KindLeave is a node leaving the network at an epoch boundary.
	KindLeave
	// KindChannelLoss is a node losing a channel to a primary user at an
	// epoch boundary.
	KindChannelLoss
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindDeliver:
		return "deliver"
	case KindCollision:
		return "collision"
	case KindNote:
		return "note"
	case KindTx:
		return "tx"
	case KindIdle:
		return "idle"
	case KindFrameStart:
		return "frame-start"
	case KindFrameResolve:
		return "frame-resolve"
	case KindEpoch:
		return "epoch"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindChannelLoss:
		return "channel-loss"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded simulation event. Time carries the slot index for
// synchronous runs and real time for asynchronous runs. The JSON field
// names are the NDJSON event-log schema read back by cmd/ndtrace.
type Event struct {
	Time    float64         `json:"t"`
	Kind    Kind            `json:"kind"`
	From    topology.NodeID `json:"from,omitempty"`
	To      topology.NodeID `json:"to,omitempty"`
	Channel channel.ID      `json:"ch,omitempty"`
	Note    string          `json:"note,omitempty"`
	// Frame is the node-local frame index (frame events only; From is the
	// frame owner).
	Frame int `json:"frame,omitempty"`
	// Collected counts candidate transmission slots a resolved listening
	// frame heard; Delivered the clear receptions it produced
	// (KindFrameResolve only).
	Collected int `json:"collected,omitempty"`
	Delivered int `json:"delivered,omitempty"`
	// Epoch is the dynamic-run epoch index (KindEpoch, KindJoin, KindLeave,
	// KindChannelLoss; From is the affected node for the latter three).
	Epoch int `json:"epoch,omitempty"`
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case KindDeliver, KindCollision:
		return fmt.Sprintf("t=%-10.3f %-9s %d -> %d ch=%d", e.Time, e.Kind, e.From, e.To, e.Channel)
	case KindTx:
		return fmt.Sprintf("t=%-10.3f %-9s %d ch=%d", e.Time, e.Kind, e.From, e.Channel)
	case KindIdle:
		return fmt.Sprintf("t=%-10.3f %-9s -> %d ch=%d", e.Time, e.Kind, e.To, e.Channel)
	case KindFrameStart:
		return fmt.Sprintf("t=%-10.3f %-9s node=%d f=%d act=%s ch=%d", e.Time, e.Kind, e.From, e.Frame, e.Note, e.Channel)
	case KindFrameResolve:
		return fmt.Sprintf("t=%-10.3f %-9s node=%d f=%d heard=%d delivered=%d", e.Time, e.Kind, e.From, e.Frame, e.Collected, e.Delivered)
	case KindEpoch:
		return fmt.Sprintf("t=%-10.3f %-9s e=%d", e.Time, e.Kind, e.Epoch)
	case KindJoin, KindLeave:
		return fmt.Sprintf("t=%-10.3f %-9s node=%d e=%d", e.Time, e.Kind, e.From, e.Epoch)
	case KindChannelLoss:
		return fmt.Sprintf("t=%-10.3f %-9s node=%d ch=%d e=%d", e.Time, e.Kind, e.From, e.Channel, e.Epoch)
	default:
		return fmt.Sprintf("t=%-10.3f %-9s %s", e.Time, e.Kind, e.Note)
	}
}

// Sink consumes events. Implementations must be safe for use from a single
// simulation goroutine; Ring additionally tolerates concurrent readers.
type Sink interface {
	Record(Event)
}

// Nop discards all events.
type Nop struct{}

// Record implements Sink.
func (Nop) Record(Event) {}

// Ring keeps the most recent events in a bounded buffer.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
}

// NewRing returns a ring holding up to capacity events. Capacity must be
// positive.
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: ring capacity %d must be positive", capacity)
	}
	return &Ring{events: make([]Event, capacity)}, nil
}

// Record implements Sink.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Events returns the recorded events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Len returns the number of stored events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Writer writes one line per event to an io.Writer. Write errors are
// counted rather than propagated — tracing must never abort a simulation —
// but they are not swallowed either: the first underlying error sticks and
// Err reports it, so callers can surface a broken sink (full disk, closed
// pipe) after the run.
type Writer struct {
	w        io.Writer
	failures int
	err      error // first write error, sticky
}

// NewWriter returns a Sink writing lines to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Record implements Sink.
func (t *Writer) Record(e Event) {
	if _, err := fmt.Fprintln(t.w, e.String()); err != nil {
		t.failures++
		if t.err == nil {
			t.err = err
		}
	}
}

// Err returns nil if every write succeeded, else an error wrapping the
// first underlying write error (inspectable with errors.Is/As) and the
// total failure count.
func (t *Writer) Err() error {
	if t.err == nil {
		return nil
	}
	return fmt.Errorf("trace: %d events failed to write (first error: %w)", t.failures, t.err)
}

// Multi fans events out to several sinks.
type Multi []Sink

// Record implements Sink.
func (m Multi) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// Format renders events as an aligned multi-line string, for test failure
// messages and tooling.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
