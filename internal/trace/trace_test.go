package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindDeliver, "deliver"},
		{KindCollision, "collision"},
		{KindNote, "note"},
		{KindTx, "tx"},
		{KindIdle, "idle"},
		{KindFrameStart, "frame-start"},
		{KindFrameResolve, "frame-resolve"},
		{Kind(0), "Kind(0)"},
	}
	for _, tt := range cases {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind %d = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1.5, Kind: KindDeliver, From: 2, To: 3, Channel: 4}
	s := e.String()
	for _, want := range []string{"deliver", "2 -> 3", "ch=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	n := Event{Kind: KindNote, Note: "hello"}
	if !strings.Contains(n.String(), "hello") {
		t.Errorf("note string %q", n.String())
	}
	txe := Event{Time: 2, Kind: KindTx, From: 5, Channel: 1}
	for _, want := range []string{"tx", "5", "ch=1"} {
		if !strings.Contains(txe.String(), want) {
			t.Errorf("tx string %q missing %q", txe.String(), want)
		}
	}
	idle := Event{Time: 2, Kind: KindIdle, To: 4, Channel: 2}
	for _, want := range []string{"idle", "-> 4", "ch=2"} {
		if !strings.Contains(idle.String(), want) {
			t.Errorf("idle string %q missing %q", idle.String(), want)
		}
	}
	fs := Event{Time: 1.5, Kind: KindFrameStart, From: 3, Frame: 7, Note: "rx", Channel: 0}
	for _, want := range []string{"frame-start", "node=3", "f=7", "act=rx"} {
		if !strings.Contains(fs.String(), want) {
			t.Errorf("frame-start string %q missing %q", fs.String(), want)
		}
	}
	fr := Event{Time: 4.5, Kind: KindFrameResolve, From: 3, Frame: 7, Collected: 6, Delivered: 2}
	for _, want := range []string{"frame-resolve", "node=3", "f=7", "heard=6", "delivered=2"} {
		if !strings.Contains(fr.String(), want) {
			t.Errorf("frame-resolve string %q missing %q", fr.String(), want)
		}
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Record(Event{}) // must not panic
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewRing(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.Record(Event{Time: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if e.Time != float64(i) {
			t.Fatalf("event %d time %v", i, e.Time)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		r.Record(Event{Time: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	events := r.Events()
	want := []float64{4, 5, 6}
	for i, e := range events {
		if e.Time != want[i] {
			t.Fatalf("events = %+v, want times %v", events, want)
		}
	}
}

func TestWriter(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Record(Event{Kind: KindDeliver, From: 1, To: 2, Channel: 3})
	w.Record(Event{Kind: KindNote, Note: "done"})
	out := sb.String()
	if !strings.Contains(out, "1 -> 2") || !strings.Contains(out, "done") {
		t.Fatalf("writer output %q", out)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("unexpected writer error: %v", err)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestWriterCountsFailures(t *testing.T) {
	w := NewWriter(failingWriter{})
	w.Record(Event{Kind: KindNote})
	w.Record(Event{Kind: KindNote})
	if err := w.Err(); err == nil || !strings.Contains(err.Error(), "2") {
		t.Fatalf("Err = %v, want 2 failures reported", err)
	}
}

// TestWriterSurfacesFirstError pins the sticky-error contract: Err wraps
// the first underlying write error rather than swallowing it, so callers
// can identify the root cause (errors.Is) after the run.
func TestWriterSurfacesFirstError(t *testing.T) {
	first := errors.New("disk full")
	w := NewWriter(&sequencedWriter{errs: []error{first, errors.New("later")}})
	w.Record(Event{Kind: KindNote})
	w.Record(Event{Kind: KindNote}) // also fails, must not displace the first
	w.Record(Event{Kind: KindNote}) // succeeds
	err := w.Err()
	if err == nil {
		t.Fatal("Err = nil after failed writes")
	}
	if !errors.Is(err, first) {
		t.Fatalf("Err = %v, want it to wrap the first error", err)
	}
	if !strings.Contains(err.Error(), "2 events") {
		t.Fatalf("Err = %v, want failure count 2", err)
	}
}

// sequencedWriter fails with each queued error in turn, then succeeds.
type sequencedWriter struct{ errs []error }

func (w *sequencedWriter) Write(p []byte) (int, error) {
	if len(w.errs) > 0 {
		err := w.errs[0]
		w.errs = w.errs[1:]
		return 0, err
	}
	return len(p), nil
}

func TestMulti(t *testing.T) {
	r1, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	m := Multi{r1, r2}
	m.Record(Event{Time: 9})
	if r1.Len() != 1 || r2.Len() != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestFormat(t *testing.T) {
	events := []Event{
		{Kind: KindNote, Note: "a"},
		{Kind: KindNote, Note: "b"},
	}
	out := Format(events)
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("Format output %q", out)
	}
}
