// Package m2hew is a library for neighbor discovery in multi-hop,
// multi-channel, heterogeneous wireless (M²HeW) networks, reproducing
// "Randomized Distributed Algorithms for Neighbor Discovery in Multi-hop
// Multi-channel Heterogeneous Wireless Networks" (Mittal, Zeng, Venkatesan,
// Chandrasekaran — ICDCS 2011).
//
// The package offers a scenario-level public API over the internal engine:
// build a network (topology + per-node available channel sets), pick one of
// the paper's four discovery algorithms, run it on the built-in synchronous
// or asynchronous simulator, and inspect the outcome next to the paper's
// analytic bound.
//
//	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
//		Nodes:    20,
//		Topology: m2hew.TopologyGeometric,
//		Radius:   0.45,
//		Universe: 10,
//		Channels: m2hew.ChannelsPrimaryUsers,
//		Primaries: 12,
//		Seed:     42,
//	})
//	...
//	report, err := m2hew.Run(nw, m2hew.RunConfig{
//		Algorithm: m2hew.AlgorithmSyncStaged,
//		Seed:      1,
//	})
//
// The four algorithms and their assumptions (see the paper, Sections III–IV):
//
//	AlgorithmSyncStaged   synchronous slots, identical start times, knows Δ_est
//	AlgorithmSyncGrowing  synchronous slots, identical start times, no degree knowledge
//	AlgorithmSyncUniform  synchronous slots, variable start times, knows Δ_est
//	AlgorithmAsync        unsynchronized drifting clocks (δ ≤ 1/7), knows Δ_est
package m2hew

import (
	"fmt"
	"io"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// Topology selects a communication-graph generator.
type Topology string

// Supported topologies.
const (
	// TopologyGeometric places nodes uniformly in the unit square with an
	// edge between nodes within Radius (the standard wireless model).
	TopologyGeometric Topology = "geometric"
	// TopologyErdosRenyi is a G(n, p) random graph with p = EdgeProb.
	TopologyErdosRenyi Topology = "erdos-renyi"
	// TopologyGrid is a Rows×Cols lattice with 4-neighbor connectivity.
	TopologyGrid Topology = "grid"
	// TopologyLine is a path of Nodes nodes.
	TopologyLine Topology = "line"
	// TopologyRing is a cycle of Nodes nodes.
	TopologyRing Topology = "ring"
	// TopologyClique is the complete graph (single-hop network).
	TopologyClique Topology = "clique"
	// TopologyStar is a hub with Nodes−1 leaves.
	TopologyStar Topology = "star"
	// TopologyBridge is two (Nodes/2)-cliques joined by one edge.
	TopologyBridge Topology = "bridge"
)

// ChannelModel selects how per-node available channel sets are assigned.
type ChannelModel string

// Supported channel models.
const (
	// ChannelsHomogeneous gives every node the full universal set (ρ = 1).
	ChannelsHomogeneous ChannelModel = "homogeneous"
	// ChannelsUniform gives every node a uniformly random SubsetSize-subset
	// of the universal set (repaired to keep discovery feasible).
	ChannelsUniform ChannelModel = "uniform"
	// ChannelsBernoulli includes each channel independently with
	// probability InclusionProb (repaired).
	ChannelsBernoulli ChannelModel = "bernoulli"
	// ChannelsPrimaryUsers derives sets from spatial primary-user channel
	// exclusion — the cognitive-radio scenario. Requires a spatial topology
	// (geometric).
	ChannelsPrimaryUsers ChannelModel = "primary-users"
	// ChannelsBlockOverlap gives every node a shared block plus a private
	// block, realizing the exact span-ratio SharedBlock/(SharedBlock+
	// PrivateBlock).
	ChannelsBlockOverlap ChannelModel = "block-overlap"
)

// NetworkConfig describes a network to build.
type NetworkConfig struct {
	// Nodes is the node count N (not used by TopologyGrid, which takes
	// Rows×Cols).
	Nodes int `json:"nodes"`
	// Topology selects the graph generator; default TopologyGeometric.
	Topology Topology `json:"topology"`
	// Radius is the geometric connection radius; default 0.4.
	Radius float64 `json:"radius,omitempty"`
	// EdgeProb is the Erdős–Rényi edge probability; default 0.3.
	EdgeProb float64 `json:"edgeProb,omitempty"`
	// Rows, Cols size the grid topology.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// RequireConnected retries geometric generation until connected.
	RequireConnected bool `json:"requireConnected,omitempty"`

	// Universe is the universal channel set size; default 8.
	Universe int `json:"universe"`
	// Channels selects the channel model; default ChannelsHomogeneous.
	Channels ChannelModel `json:"channels"`
	// SubsetSize is the per-node set size for ChannelsUniform; default
	// Universe/2 (min 1).
	SubsetSize int `json:"subsetSize,omitempty"`
	// InclusionProb is the ChannelsBernoulli inclusion probability;
	// default 0.5.
	InclusionProb float64 `json:"inclusionProb,omitempty"`
	// Primaries is the primary-user count for ChannelsPrimaryUsers;
	// default 10.
	Primaries int `json:"primaries,omitempty"`
	// ExclusionRadius is the primary-user exclusion radius; default 0.3.
	ExclusionRadius float64 `json:"exclusionRadius,omitempty"`
	// SharedBlock and PrivateBlock size the ChannelsBlockOverlap model;
	// defaults 2 and 2.
	SharedBlock  int `json:"sharedBlock,omitempty"`
	PrivateBlock int `json:"privateBlock,omitempty"`

	// AsymmetricFraction makes the graph partially asymmetric: each edge
	// loses one randomly chosen direction with this probability (the
	// paper's Section V extension (a)). Default 0 (symmetric).
	AsymmetricFraction float64 `json:"asymmetricFraction,omitempty"`
	// SpanCap, if positive, restricts every link to at most SpanCap of the
	// channels both endpoints share, modeling diverse propagation
	// characteristics (the paper's Section V extension (c)).
	SpanCap int `json:"spanCap,omitempty"`

	// Seed makes generation deterministic; default 1.
	Seed uint64 `json:"seed"`
}

// Stats are the derived network parameters of the paper's Section II.
type Stats struct {
	// Nodes is N.
	Nodes int `json:"nodes"`
	// Universe is the realized universal channel set size.
	Universe int `json:"universe"`
	// S is the largest available channel set size.
	S int `json:"s"`
	// Delta is the maximum per-channel degree Δ.
	Delta int `json:"delta"`
	// MaxDegree is the maximum plain graph degree.
	MaxDegree int `json:"maxDegree"`
	// Rho is the minimum span-ratio ρ ∈ [1/S, 1].
	Rho float64 `json:"rho"`
	// Edges is the undirected edge count.
	Edges int `json:"edges"`
	// DiscoverableLinks is the number of directed links with a non-empty
	// span — the discovery target.
	DiscoverableLinks int `json:"discoverableLinks"`
}

// Network is a built M²HeW network ready to run discovery on.
type Network struct {
	inner  *topology.Network
	params topology.Params
	seed   uint64
}

// BuildNetwork constructs a network from the configuration.
func BuildNetwork(cfg NetworkConfig) (*Network, error) {
	cfg = networkDefaults(cfg)
	r := rng.New(cfg.Seed)
	nw, err := buildGraph(cfg, r)
	if err != nil {
		return nil, err
	}
	if err := assignChannels(nw, cfg, r); err != nil {
		return nil, err
	}
	if cfg.SpanCap < 0 {
		return nil, fmt.Errorf("m2hew: negative span cap %d", cfg.SpanCap)
	}
	if cfg.SpanCap > 0 {
		if err := topology.RestrictSpansRandomly(nw, cfg.SpanCap, r); err != nil {
			return nil, err
		}
	}
	if cfg.AsymmetricFraction != 0 {
		if err := topology.DropRandomDirections(nw, cfg.AsymmetricFraction, r); err != nil {
			return nil, err
		}
	}
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("m2hew: built network invalid: %w", err)
	}
	return &Network{inner: nw, params: nw.ComputeParams(), seed: cfg.Seed}, nil
}

func networkDefaults(cfg NetworkConfig) NetworkConfig {
	if cfg.Topology == "" {
		cfg.Topology = TopologyGeometric
	}
	if cfg.Nodes == 0 && cfg.Topology != TopologyGrid {
		cfg.Nodes = 16
	}
	if cfg.Radius == 0 {
		cfg.Radius = 0.4
	}
	if cfg.EdgeProb == 0 {
		cfg.EdgeProb = 0.3
	}
	if cfg.Rows == 0 {
		cfg.Rows = 4
	}
	if cfg.Cols == 0 {
		cfg.Cols = 4
	}
	if cfg.Universe == 0 {
		cfg.Universe = 8
	}
	if cfg.Channels == "" {
		cfg.Channels = ChannelsHomogeneous
	}
	if cfg.SubsetSize == 0 {
		cfg.SubsetSize = cfg.Universe / 2
		if cfg.SubsetSize < 1 {
			cfg.SubsetSize = 1
		}
	}
	if cfg.InclusionProb == 0 {
		cfg.InclusionProb = 0.5
	}
	if cfg.Primaries == 0 {
		cfg.Primaries = 10
	}
	if cfg.ExclusionRadius == 0 {
		cfg.ExclusionRadius = 0.3
	}
	if cfg.SharedBlock == 0 {
		cfg.SharedBlock = 2
		// PrivateBlock = 0 is meaningful (it makes ρ = 1), so it defaults
		// only when the whole block-overlap shape was left unset.
		if cfg.PrivateBlock == 0 {
			cfg.PrivateBlock = 2
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

func buildGraph(cfg NetworkConfig, r *rng.Source) (*topology.Network, error) {
	switch cfg.Topology {
	case TopologyGeometric:
		if cfg.RequireConnected {
			return topology.GeometricConnected(cfg.Nodes, cfg.Radius, r, 200)
		}
		return topology.Geometric(cfg.Nodes, cfg.Radius, r)
	case TopologyErdosRenyi:
		return topology.ErdosRenyi(cfg.Nodes, cfg.EdgeProb, r)
	case TopologyGrid:
		return topology.Grid(cfg.Rows, cfg.Cols)
	case TopologyLine:
		return topology.Line(cfg.Nodes)
	case TopologyRing:
		return topology.Ring(cfg.Nodes)
	case TopologyClique:
		return topology.Clique(cfg.Nodes)
	case TopologyStar:
		return topology.Star(cfg.Nodes)
	case TopologyBridge:
		return topology.TwoClusterBridge(cfg.Nodes / 2)
	default:
		return nil, fmt.Errorf("m2hew: unknown topology %q", cfg.Topology)
	}
}

func assignChannels(nw *topology.Network, cfg NetworkConfig, r *rng.Source) error {
	switch cfg.Channels {
	case ChannelsHomogeneous:
		return topology.AssignHomogeneous(nw, cfg.Universe)
	case ChannelsUniform:
		return topology.AssignUniformK(nw, cfg.Universe, cfg.SubsetSize, r)
	case ChannelsBernoulli:
		return topology.AssignBernoulli(nw, cfg.Universe, cfg.InclusionProb, r)
	case ChannelsPrimaryUsers:
		if cfg.Topology != TopologyGeometric {
			return fmt.Errorf("m2hew: channel model %q needs topology %q", cfg.Channels, TopologyGeometric)
		}
		_, err := topology.AssignPrimaryUsers(nw, cfg.Universe, cfg.Primaries, cfg.ExclusionRadius, r)
		return err
	case ChannelsBlockOverlap:
		return topology.AssignBlockOverlap(nw, cfg.SharedBlock, cfg.PrivateBlock)
	default:
		return fmt.Errorf("m2hew: unknown channel model %q", cfg.Channels)
	}
}

// N returns the number of nodes.
func (n *Network) N() int { return n.inner.N() }

// Stats returns the derived network parameters.
func (n *Network) Stats() Stats {
	p := n.params
	return Stats{
		Nodes:             p.N,
		Universe:          p.UniverseSize,
		S:                 p.S,
		Delta:             p.Delta,
		MaxDegree:         p.MaxGraphDegree,
		Rho:               p.Rho,
		Edges:             p.Edges,
		DiscoverableLinks: p.DiscoverableLinks,
	}
}

// Connected reports whether the communication graph is connected.
func (n *Network) Connected() bool { return n.inner.Connected() }

// NeighborIDs returns the true neighbors of node u (ground truth the
// discovery algorithms must find). It returns nil for out-of-range u.
func (n *Network) NeighborIDs(u int) []int {
	if u < 0 || u >= n.inner.N() {
		return nil
	}
	src := n.inner.Neighbors(topology.NodeID(u))
	out := make([]int, len(src))
	for i, v := range src {
		out[i] = int(v)
	}
	return out
}

// AvailableChannels returns A(u) as channel indexes, or nil for
// out-of-range u.
func (n *Network) AvailableChannels(u int) []int {
	if u < 0 || u >= n.inner.N() {
		return nil
	}
	return setToInts(n.inner.Avail(topology.NodeID(u)))
}

// CommonChannels returns span(u,v), the channels the link between u and v
// can use; empty for non-adjacent or out-of-range pairs.
func (n *Network) CommonChannels(u, v int) []int {
	if u < 0 || v < 0 || u >= n.inner.N() || v >= n.inner.N() {
		return nil
	}
	return setToInts(n.inner.Span(topology.NodeID(u), topology.NodeID(v)))
}

// Position returns the plane coordinates of node u (zero for abstract
// topologies).
func (n *Network) Position(u int) (x, y float64) {
	if u < 0 || u >= n.inner.N() {
		return 0, 0
	}
	node := n.inner.Node(topology.NodeID(u))
	return node.X, node.Y
}

func setToInts(s channel.Set) []int {
	ids := s.IDs()
	out := make([]int, len(ids))
	for i, c := range ids {
		out[i] = int(c)
	}
	return out
}

// SaveNetwork writes the network — topology, channel sets, span overrides
// and asymmetric directions — to w in a stable JSON format, so an exact
// scenario can be re-run later or shared. Load it back with LoadNetwork.
func SaveNetwork(n *Network, w io.Writer) error {
	if n == nil {
		return fmt.Errorf("m2hew: nil network")
	}
	return n.inner.EncodeJSON(w)
}

// LoadNetwork reads a network previously written by SaveNetwork.
func LoadNetwork(r io.Reader) (*Network, error) {
	inner, err := topology.DecodeJSON(r)
	if err != nil {
		return nil, fmt.Errorf("m2hew: %w", err)
	}
	return &Network{inner: inner, params: inner.ComputeParams()}, nil
}

// RevokeChannel models the arrival of a licensed primary user during
// operation: the channel is removed from the available set of every node
// within radius of (x, y) — the "secondary users have to vacate the
// channel" event of cognitive radio. It returns the IDs of affected nodes.
//
// Revocation mutates the network: spans shrink and some links may become
// undiscoverable; Stats reflects the new parameters. Re-run discovery
// afterwards to rebuild neighbor tables (experiment E18 quantifies the
// cost). No repair is performed — a node may legitimately end up with no
// channels at all, in which case subsequent runs leave it silent... which
// the paper's protocols cannot represent, so Run returns an error for such
// networks; check Stats first.
func (n *Network) RevokeChannel(ch int, x, y, radius float64) []int {
	if ch < 0 {
		return nil
	}
	affected := topology.RevokeChannel(n.inner, channel.ID(ch), x, y, radius)
	n.params = n.inner.ComputeParams()
	out := make([]int, len(affected))
	for i, u := range affected {
		out[i] = int(u)
	}
	return out
}
