package m2hew

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestBuildNetworkDefaults(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.Nodes != 16 {
		t.Fatalf("default nodes = %d, want 16", s.Nodes)
	}
	if s.Universe != 8 || s.S != 8 {
		t.Fatalf("default channels: %+v", s)
	}
	if s.Rho != 1 {
		t.Fatalf("homogeneous default rho = %v", s.Rho)
	}
}

func TestBuildNetworkTopologies(t *testing.T) {
	cases := []struct {
		name string
		cfg  NetworkConfig
		n    int
	}{
		{"geometric", NetworkConfig{Topology: TopologyGeometric, Nodes: 12, RequireConnected: true}, 12},
		{"erdos", NetworkConfig{Topology: TopologyErdosRenyi, Nodes: 10, EdgeProb: 0.9}, 10},
		{"grid", NetworkConfig{Topology: TopologyGrid, Rows: 3, Cols: 5}, 15},
		{"line", NetworkConfig{Topology: TopologyLine, Nodes: 7}, 7},
		{"ring", NetworkConfig{Topology: TopologyRing, Nodes: 6}, 6},
		{"clique", NetworkConfig{Topology: TopologyClique, Nodes: 5}, 5},
		{"star", NetworkConfig{Topology: TopologyStar, Nodes: 9}, 9},
		{"bridge", NetworkConfig{Topology: TopologyBridge, Nodes: 8}, 8},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			nw, err := BuildNetwork(tt.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if nw.N() != tt.n {
				t.Fatalf("N = %d, want %d", nw.N(), tt.n)
			}
		})
	}
}

func TestBuildNetworkUnknownKinds(t *testing.T) {
	if _, err := BuildNetwork(NetworkConfig{Topology: "mesh"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := BuildNetwork(NetworkConfig{Channels: "psychic"}); err == nil {
		t.Fatal("unknown channel model accepted")
	}
}

func TestBuildNetworkChannelModels(t *testing.T) {
	for _, model := range []ChannelModel{
		ChannelsHomogeneous, ChannelsUniform, ChannelsBernoulli, ChannelsBlockOverlap,
	} {
		nw, err := BuildNetwork(NetworkConfig{
			Topology: TopologyRing,
			Nodes:    6,
			Universe: 6,
			Channels: model,
			Seed:     3,
		})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if nw.Stats().S < 1 {
			t.Fatalf("%s: empty channel sets", model)
		}
	}
	// Primary users require a spatial topology.
	if _, err := BuildNetwork(NetworkConfig{
		Topology: TopologyRing, Nodes: 6, Channels: ChannelsPrimaryUsers,
	}); err == nil {
		t.Fatal("primary users on abstract topology accepted")
	}
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyGeometric, Nodes: 15, RequireConnected: true,
		Channels: ChannelsPrimaryUsers, Universe: 8, Primaries: 12, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Stats().Rho <= 0 || nw.Stats().Rho > 1 {
		t.Fatalf("primary-user rho %v", nw.Stats().Rho)
	}
}

func TestNetworkAccessors(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyLine, Nodes: 3, Universe: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.NeighborIDs(1); len(got) != 2 {
		t.Fatalf("NeighborIDs(1) = %v", got)
	}
	if got := nw.NeighborIDs(99); got != nil {
		t.Fatalf("NeighborIDs(99) = %v, want nil", got)
	}
	if got := nw.AvailableChannels(0); len(got) != 4 {
		t.Fatalf("AvailableChannels = %v", got)
	}
	if got := nw.AvailableChannels(-1); got != nil {
		t.Fatal("negative node returned channels")
	}
	if got := nw.CommonChannels(0, 1); len(got) != 4 {
		t.Fatalf("CommonChannels(0,1) = %v", got)
	}
	if got := nw.CommonChannels(0, 2); len(got) != 0 {
		t.Fatalf("CommonChannels of non-edge = %v", got)
	}
	if got := nw.CommonChannels(0, 99); got != nil {
		t.Fatal("out-of-range pair returned channels")
	}
	x, y := nw.Position(0)
	if x != 0 || y != 0 {
		t.Fatalf("line position = (%v,%v)", x, y)
	}
	if !nw.Connected() {
		t.Fatal("line reported disconnected")
	}
}

func TestRunValidation(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 4, Universe: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, RunConfig{Algorithm: AlgorithmAsync}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := Run(nw, RunConfig{Algorithm: "genie"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncStaged, Epsilon: 2}); err == nil {
		t.Error("epsilon 2 accepted")
	}
	if _, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncStaged, DeltaEst: 1}); err == nil {
		t.Error("degree estimate below true degree accepted")
	}
	if _, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncStaged, StartWindow: 10}); err == nil {
		t.Error("staggered starts with Algorithm 1 accepted")
	}
	if _, err := Run(nw, RunConfig{Algorithm: AlgorithmAsync, DriftBound: 1.5}); err == nil {
		t.Error("drift bound 1.5 accepted")
	}
	if _, err := Run(nw, RunConfig{Algorithm: AlgorithmAsync, StartSpread: -1}); err == nil {
		t.Error("negative start spread accepted")
	}
}

func TestRunAllAlgorithmsComplete(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyClique, Nodes: 5, Universe: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{
		AlgorithmSyncStaged, AlgorithmSyncGrowing, AlgorithmSyncUniform, AlgorithmAsync,
	} {
		t.Run(string(alg), func(t *testing.T) {
			report, err := Run(nw, RunConfig{Algorithm: alg, Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			if !report.Complete {
				t.Fatalf("%s incomplete: %d/%d links", alg, report.LinksCovered, report.LinksTotal)
			}
			if report.LinksCovered != report.LinksTotal {
				t.Fatalf("complete but %d/%d links", report.LinksCovered, report.LinksTotal)
			}
			if report.Bound <= 0 {
				t.Fatal("no analytic bound reported")
			}
			switch alg {
			case AlgorithmAsync:
				if report.Duration <= 0 {
					t.Fatal("async run missing duration")
				}
				if report.Duration > report.Bound {
					t.Fatalf("duration %v exceeds Theorem 10 bound %v", report.Duration, report.Bound)
				}
			default:
				if report.Slots <= 0 {
					t.Fatal("sync run missing slot count")
				}
				if float64(report.Slots) > report.Bound {
					t.Fatalf("slots %d exceed bound %v", report.Slots, report.Bound)
				}
			}
			// Tables must exactly match ground truth.
			for u := 0; u < nw.N(); u++ {
				want := nw.NeighborIDs(u)
				got := report.Tables[u]
				if len(got) != len(want) {
					t.Fatalf("node %d discovered %d neighbors, want %d", u, len(got), len(want))
				}
				for i, d := range got {
					if d.Neighbor != want[i] {
						t.Fatalf("node %d table %v, want neighbors %v", u, got, want)
					}
					common := nw.CommonChannels(u, d.Neighbor)
					if len(common) != len(d.CommonChannels) {
						t.Fatalf("node %d neighbor %d channels %v, want %v",
							u, d.Neighbor, d.CommonChannels, common)
					}
				}
			}
		})
	}
}

func TestRunStaggeredUniform(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyRing, Nodes: 6, Universe: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(nw, RunConfig{
		Algorithm:   AlgorithmSyncUniform,
		StartWindow: 200,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("staggered uniform incomplete: %d/%d", report.LinksCovered, report.LinksTotal)
	}
}

func TestRunAsyncWithDriftAndSpread(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyRing, Nodes: 5, Universe: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(nw, RunConfig{
		Algorithm:   AlgorithmAsync,
		DriftBound:  1.0 / 7,
		StartSpread: 30,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("drifting async incomplete: %d/%d", report.LinksCovered, report.LinksTotal)
	}
}

func TestRunDeterminism(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 4, Universe: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncStaged, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncStaged, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Slots != r2.Slots {
		t.Fatalf("same seed different slots: %d vs %d", r1.Slots, r2.Slots)
	}
}

func TestRunHorizonOverride(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 6, Universe: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A 1-slot horizon cannot complete discovery.
	report, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, MaxSlots: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Complete {
		t.Fatal("1-slot run reported complete")
	}
	if report.LinksTotal == 0 {
		t.Fatal("no target links")
	}
}

func TestRunBaselines(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyClique, Nodes: 5, Universe: 3, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(nw, RunConfig{Algorithm: AlgorithmBaselineRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Complete {
		t.Fatalf("round robin incomplete: %d/%d", rr.LinksCovered, rr.LinksTotal)
	}
	if float64(rr.Slots) > rr.Bound {
		t.Fatalf("round robin took %d slots, beyond its N·U=%v cycle", rr.Slots, rr.Bound)
	}
	ub, err := Run(nw, RunConfig{Algorithm: AlgorithmBaselineUniversal, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ub.Complete {
		t.Fatalf("universal baseline incomplete: %d/%d", ub.LinksCovered, ub.LinksTotal)
	}
	if ub.Bound != 0 {
		t.Fatalf("universal baseline reported a bound (%v); the paper gives none", ub.Bound)
	}
}

func TestRunBaselineUniverseGrowsCost(t *testing.T) {
	// The headline critique: same network, bigger agreed universal set →
	// slower universal baseline.
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyClique, Nodes: 5, Universe: 4, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(nw, RunConfig{Algorithm: AlgorithmBaselineUniversal, UniverseSize: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(nw, RunConfig{Algorithm: AlgorithmBaselineUniversal, UniverseSize: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !small.Complete || !big.Complete {
		t.Fatal("baseline runs incomplete")
	}
	if big.Slots <= small.Slots {
		t.Fatalf("universal baseline not slower with U=64 (%d) than U=4 (%d)", big.Slots, small.Slots)
	}
}

func TestBuildNetworkExtensions(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyClique, Nodes: 8, Universe: 8,
		AsymmetricFraction: 0.5, SpanCap: 2, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.DiscoverableLinks >= 2*s.Edges {
		t.Fatalf("asymmetry dropped no directions: %d links, %d edges", s.DiscoverableLinks, s.Edges)
	}
	// Span cap 2 of universe 8 forces low rho.
	if s.Rho > 0.25 {
		t.Fatalf("span cap did not lower rho: %v", s.Rho)
	}
	if _, err := BuildNetwork(NetworkConfig{AsymmetricFraction: 2}); err == nil {
		t.Fatal("asymmetric fraction 2 accepted")
	}
	if _, err := BuildNetwork(NetworkConfig{SpanCap: -1}); err == nil {
		t.Fatal("negative span cap accepted")
	}
}

func TestRunWithLoss(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyRing, Nodes: 6, Universe: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, LossProb: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Complete || !lossy.Complete {
		t.Fatal("runs incomplete")
	}
	if lossy.Slots <= clean.Slots {
		t.Fatalf("60%% loss did not slow discovery: %d vs %d slots", lossy.Slots, clean.Slots)
	}
	if _, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, LossProb: 1}); err == nil {
		t.Fatal("loss probability 1 accepted")
	}
}

func TestRunWithTerminationSync(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 6, Universe: 3, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(nw, RunConfig{
		Algorithm:          AlgorithmSyncUniform,
		TerminateAfterIdle: 600,
		Seed:               5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("terminating run incomplete: %d/%d", report.LinksCovered, report.LinksTotal)
	}
	if report.TerminatedNodes != nw.N() {
		t.Fatalf("%d/%d nodes terminated", report.TerminatedNodes, nw.N())
	}
	if report.MeanActiveUnits <= 0 {
		t.Fatal("no active-slot accounting")
	}
	if _, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, TerminateAfterIdle: -1}); err == nil {
		t.Fatal("negative idle limit accepted")
	}
}

func TestRunWithTerminationAsync(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyRing, Nodes: 5, Universe: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(nw, RunConfig{
		Algorithm:          AlgorithmAsync,
		TerminateAfterIdle: 500,
		DriftBound:         0.1,
		Seed:               6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("terminating async run incomplete: %d/%d", report.LinksCovered, report.LinksTotal)
	}
	if report.TerminatedNodes != nw.N() {
		t.Fatalf("%d/%d nodes terminated", report.TerminatedNodes, nw.N())
	}
}

func TestRunAsymmetricNetworkCompletes(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyClique, Nodes: 6, Universe: 3,
		AsymmetricFraction: 0.6, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncStaged, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("asymmetric discovery incomplete: %d/%d", report.LinksCovered, report.LinksTotal)
	}
}

func TestReportCurve(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 4, Universe: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Curve) != report.LinksTotal {
		t.Fatalf("curve has %d points, want one per link (%d)", len(report.Curve), report.LinksTotal)
	}
	for i := 1; i < len(report.Curve); i++ {
		if report.Curve[i].Time < report.Curve[i-1].Time {
			t.Fatal("curve not time-sorted")
		}
		if report.Curve[i].Covered != report.Curve[i-1].Covered+1 {
			t.Fatal("curve counts not cumulative")
		}
	}
	last := report.Curve[len(report.Curve)-1]
	if int(last.Time) != report.Slots-1 {
		t.Fatalf("last curve point at %v, completion slot %d", last.Time, report.Slots-1)
	}
}

func TestSaveLoadNetwork(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyGeometric, Nodes: 10, RequireConnected: true,
		Universe: 6, Channels: ChannelsPrimaryUsers, Primaries: 8,
		AsymmetricFraction: 0.3, SpanCap: 2, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := SaveNetwork(nw, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != nw.Stats() {
		t.Fatalf("stats differ after round trip:\n%+v\n%+v", loaded.Stats(), nw.Stats())
	}
	// A discovery run on the loaded network must behave identically.
	r1, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncStaged, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(loaded, RunConfig{Algorithm: AlgorithmSyncStaged, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Slots != r2.Slots || r1.Complete != r2.Complete {
		t.Fatalf("runs diverge on loaded network: %d vs %d slots", r1.Slots, r2.Slots)
	}
	if err := SaveNetwork(nil, &buf); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := LoadNetwork(strings.NewReader("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestRunBoundsAndHorizons(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 5, Universe: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin bound is exactly N·U for the derived universe.
	rr, err := Run(nw, RunConfig{Algorithm: AlgorithmBaselineRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Bound != float64(5*3) {
		t.Fatalf("round robin bound %v, want 15", rr.Bound)
	}
	// With an explicit UniverseSize it scales accordingly.
	rr2, err := Run(nw, RunConfig{Algorithm: AlgorithmBaselineRoundRobin, UniverseSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Bound != float64(5*10) {
		t.Fatalf("round robin bound %v, want 50", rr2.Bound)
	}
	// Termination with the growing algorithm (no Δest) also works.
	grow, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncGrowing, TerminateAfterIdle: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !grow.Complete || grow.TerminatedNodes != 5 {
		t.Fatalf("growing+termination: complete=%v terminated=%d", grow.Complete, grow.TerminatedNodes)
	}
	// Trace writer works on the async path too.
	var sb strings.Builder
	_, err = Run(nw, RunConfig{Algorithm: AlgorithmAsync, Seed: 3, TraceWriter: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "deliver") {
		t.Fatal("async trace produced no deliveries")
	}
}

func TestRevokeChannelPublic(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{
		Topology: TopologyGeometric, Nodes: 15, RequireConnected: true,
		Universe: 4, Channels: ChannelsHomogeneous, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := nw.Stats()
	affected := nw.RevokeChannel(0, 0.5, 0.5, 2.0) // everyone
	if len(affected) != nw.N() {
		t.Fatalf("affected %d, want all %d", len(affected), nw.N())
	}
	after := nw.Stats()
	if after.S != before.S-1 {
		t.Fatalf("S %d -> %d, want one channel gone", before.S, after.S)
	}
	// Discovery still works on the remaining channels.
	report, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("post-churn discovery incomplete: %d/%d", report.LinksCovered, report.LinksTotal)
	}
	if nw.RevokeChannel(-1, 0, 0, 1) != nil {
		t.Fatal("negative channel revocation returned nodes")
	}
}

func TestDutyCycleReported(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 4, Universe: 2, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	// Always-on protocols: duty cycle 1.
	alwaysOn, err := Run(nw, RunConfig{Algorithm: AlgorithmSyncUniform, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if alwaysOn.MeanDutyCycle != 1 {
		t.Fatalf("always-on duty cycle %v, want 1", alwaysOn.MeanDutyCycle)
	}
	// Termination drives it below 1 (the run continues past quiescence).
	terminated, err := Run(nw, RunConfig{
		Algorithm: AlgorithmSyncUniform, TerminateAfterIdle: 200, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if terminated.MeanDutyCycle >= 1 || terminated.MeanDutyCycle <= 0 {
		t.Fatalf("terminating duty cycle %v, want in (0,1)", terminated.MeanDutyCycle)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	in := RunConfig{
		Algorithm: AlgorithmAsync, DeltaEst: 8, Epsilon: 0.05,
		DriftBound: 0.1, StartSpread: 20, LossProb: 0.2,
		TerminateAfterIdle: 100, UniverseSize: 16, Seed: 9,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out RunConfig
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("RunConfig round trip changed: %+v -> %+v", in, out)
	}
	nc := NetworkConfig{
		Nodes: 9, Topology: TopologyRing, Universe: 5,
		Channels: ChannelsBlockOverlap, SharedBlock: 3, PrivateBlock: 1,
		AsymmetricFraction: 0.25, SpanCap: 2, Seed: 3,
	}
	data, err = json.Marshal(nc)
	if err != nil {
		t.Fatal(err)
	}
	var nc2 NetworkConfig
	if err := json.Unmarshal(data, &nc2); err != nil {
		t.Fatal(err)
	}
	if nc2 != nc {
		t.Fatalf("NetworkConfig round trip changed: %+v -> %+v", nc, nc2)
	}
}

func TestRunAsyncWithLoss(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyRing, Nodes: 5, Universe: 2, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(nw, RunConfig{Algorithm: AlgorithmAsync, LossProb: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("lossy async run incomplete: %d/%d", report.LinksCovered, report.LinksTotal)
	}
}

func TestRunTrials(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 5, Universe: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Algorithm: AlgorithmSyncUniform, Seed: 7}
	reports, err := RunTrials(nw, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 6 {
		t.Fatalf("got %d reports, want 6", len(reports))
	}
	for i, rep := range reports {
		if rep == nil || !rep.Complete {
			t.Fatalf("trial %d incomplete: %+v", i, rep)
		}
	}
	// Trial 0 is exactly the single-run result for the same seed.
	single, err := Run(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Slots != single.Slots {
		t.Fatalf("trial 0 slots %d != single run slots %d", reports[0].Slots, single.Slots)
	}
	// Deterministic across invocations.
	again, err := RunTrials(nw, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		if reports[i].Slots != again[i].Slots {
			t.Fatalf("trial %d not deterministic: %d vs %d", i, reports[i].Slots, again[i].Slots)
		}
	}
	// Distinct trials use distinct seeds (overwhelmingly likely to differ in
	// at least one completion time on this scale).
	allEqual := true
	for i := 1; i < len(reports); i++ {
		if reports[i].Slots != reports[0].Slots {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("all trials identical; per-trial seeds not applied")
	}
}

func TestRunTrialsValidation(t *testing.T) {
	nw, err := BuildNetwork(NetworkConfig{Topology: TopologyClique, Nodes: 4, Universe: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrials(nil, RunConfig{Algorithm: AlgorithmSyncUniform}, 2); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := RunTrials(nw, RunConfig{Algorithm: AlgorithmSyncUniform}, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunTrials(nw, RunConfig{Algorithm: AlgorithmSyncUniform, TraceWriter: io.Discard}, 2); err == nil {
		t.Error("TraceWriter accepted")
	}
	if _, err := RunTrials(nw, RunConfig{Algorithm: "bogus"}, 2); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
