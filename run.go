package m2hew

import (
	"fmt"
	"io"
	"math"

	"m2hew/internal/analytic"
	"m2hew/internal/baseline"
	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/dynamics"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
	"m2hew/internal/trace"
)

// Algorithm selects one of the paper's discovery algorithms.
type Algorithm string

// The paper's four algorithms, plus the two Related-Work baselines used by
// its opening critique.
const (
	// AlgorithmSyncStaged is Algorithm 1 (synchronous, identical starts,
	// known degree bound).
	AlgorithmSyncStaged Algorithm = "sync-staged"
	// AlgorithmSyncGrowing is Algorithm 2 (synchronous, identical starts,
	// no degree knowledge).
	AlgorithmSyncGrowing Algorithm = "sync-growing"
	// AlgorithmSyncUniform is Algorithm 3 (synchronous, variable starts,
	// known degree bound).
	AlgorithmSyncUniform Algorithm = "sync-uniform"
	// AlgorithmAsync is Algorithm 4 (asynchronous, drifting clocks with
	// δ ≤ 1/7, known degree bound).
	AlgorithmAsync Algorithm = "async"

	// AlgorithmBaselineUniversal is the Related-Work comparator: one
	// single-channel birthday-protocol instance per channel of the agreed
	// universal set, interleaved across slots. Its cost grows linearly with
	// UniverseSize — the critique the paper opens with. Synchronous,
	// identical start times.
	AlgorithmBaselineUniversal Algorithm = "baseline-universal"
	// AlgorithmBaselineRoundRobin is the deterministic comparator in the
	// spirit of the paper's refs [20–22]: slot t is dedicated to
	// transmitter (t/U) mod N on channel t mod U. Collision-free,
	// deterministic, but Θ(N·U) time. Synchronous, identical start times.
	AlgorithmBaselineRoundRobin Algorithm = "baseline-roundrobin"
)

// RunConfig controls one discovery run.
type RunConfig struct {
	// Algorithm selects the protocol; required.
	Algorithm Algorithm `json:"algorithm"`
	// DeltaEst is the degree upper bound given to the nodes; 0 derives the
	// next power of two above the true Δ (a realistically loose bound).
	// Ignored by AlgorithmSyncGrowing.
	DeltaEst int `json:"deltaEst,omitempty"`
	// Epsilon is the failure probability used to size the default horizon
	// from the matching theorem's bound; default 0.1.
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxSlots overrides the synchronous horizon (default: the theorem
	// bound for the chosen algorithm).
	MaxSlots int `json:"maxSlots,omitempty"`
	// MaxFrames overrides the asynchronous per-node frame horizon.
	MaxFrames int `json:"maxFrames,omitempty"`
	// FrameLen is the asynchronous local frame length L; default 3.
	FrameLen float64 `json:"frameLen,omitempty"`
	// StartWindow staggers synchronous start slots uniformly in
	// [0, StartWindow); only AlgorithmSyncUniform tolerates it.
	StartWindow int `json:"startWindow,omitempty"`
	// StartSpread staggers asynchronous node start times uniformly in
	// [0, StartSpread) real time units.
	StartSpread float64 `json:"startSpread,omitempty"`
	// DriftBound is the asynchronous clock drift bound δ; nodes get
	// independent bounded random-walk drift processes. Default 0 (ideal
	// clocks). Must be ≤ 1/7 for the paper's guarantee; larger values are
	// allowed for experimentation.
	DriftBound float64 `json:"driftBound,omitempty"`
	// UniverseSize is the agreed universal channel set size assumed by the
	// baseline algorithms (they require such agreement; the paper's
	// algorithms do not). 0 derives the smallest size covering every
	// node's channels. Ignored by the paper's algorithms.
	UniverseSize int `json:"universeSize,omitempty"`
	// LossProb makes channels unreliable: every arriving transmission is
	// independently erased at each receiver with this probability (the
	// paper's Section V extension (b)). Default 0 (reliable).
	LossProb float64 `json:"lossProb,omitempty"`
	// TerminateAfterIdle, if positive, wraps every node with the
	// quiescence termination rule: a node shuts its radio off after this
	// many consecutive slots (synchronous) or frames (asynchronous)
	// without discovering a new neighbor. The run then continues to its
	// horizon rather than stopping at oracle completion, and the Report's
	// termination fields are populated. Default 0 (the paper's forever-
	// running protocols).
	TerminateAfterIdle int `json:"terminateAfterIdle,omitempty"`
	// Dynamics, if non-nil, runs discovery on a time-varying network: node
	// churn, random-waypoint mobility and primary-user spectrum dynamics
	// follow an epoch schedule drawn from the run seed (see
	// internal/dynamics). The coverage target then grows as links appear,
	// so the Report's latency fields replace completion time as the
	// headline. Incompatible with StartWindow — churn schedules subsume
	// staggered starts.
	Dynamics *DynamicsConfig `json:"dynamics,omitempty"`
	// Seed makes the run deterministic; default 1.
	Seed uint64 `json:"seed"`
	// TraceWriter, if non-nil, receives one line per clear reception
	// ("t=… deliver v -> u ch=c"). Intended for tooling; it does not affect
	// the run.
	TraceWriter io.Writer `json:"-"`
	// EventWriter, if non-nil, receives the full engine event stream —
	// deliveries, transmissions, collisions, idle listens, frame
	// boundaries — as NDJSON (one trace.Event per line), the format
	// consumed by cmd/ndtrace. It does not affect the run. Write failures
	// surface as an error after the run completes.
	EventWriter io.Writer `json:"-"`
	// Observer, if non-nil, additionally receives the engine's event
	// stream (sim.Event values) and — when it implements
	// sim.InternalsSink — the end-of-run engine-internals report. It is
	// called from the run's goroutine only and does not affect results;
	// ndsim's -diag flag attaches its telemetry observer here because
	// single runs bypass the harness instrument seam.
	Observer sim.Observer `json:"-"`
}

// DynamicsConfig selects the time-varying behaviours of a run. Any subset
// of the three profiles may be active; zero-valued profiles are off. It is
// the public mirror of dynamics.Spec (see internal/dynamics for the model).
type DynamicsConfig struct {
	// EpochLen is the epoch length in the engine's native time unit: slots
	// for synchronous algorithms (must be a positive whole number), real
	// time units for AlgorithmAsync. Required > 0.
	EpochLen float64 `json:"epochLen"`
	// ChurnJoinFraction / ChurnLeaveFraction make each node independently
	// join late (uniformly within the first ChurnJoinWindow epochs) or
	// leave permanently (uniformly within ChurnLeaveWindow epochs after
	// joining) with the given probabilities.
	ChurnJoinFraction  float64 `json:"churnJoinFraction,omitempty"`
	ChurnJoinWindow    int     `json:"churnJoinWindow,omitempty"`
	ChurnLeaveFraction float64 `json:"churnLeaveFraction,omitempty"`
	ChurnLeaveWindow   int     `json:"churnLeaveWindow,omitempty"`
	// MobilitySpeed > 0 activates random-waypoint motion over the unit
	// square (unit lengths per epoch) with per-epoch edge re-derivation at
	// communication radius MobilityRadius, pausing MobilityPause epochs at
	// each waypoint.
	MobilitySpeed  float64 `json:"mobilitySpeed,omitempty"`
	MobilityRadius float64 `json:"mobilityRadius,omitempty"`
	MobilityPause  int     `json:"mobilityPause,omitempty"`
	// PrimaryEvents > 0 schedules that many primary-user appearances at
	// uniform positions and epochs, each occupying one uniform channel for
	// PrimaryDuration epochs within exclusion radius PrimaryRadius.
	PrimaryEvents   int     `json:"primaryEvents,omitempty"`
	PrimaryDuration int     `json:"primaryDuration,omitempty"`
	PrimaryRadius   float64 `json:"primaryRadius,omitempty"`
}

// spec maps the public knobs onto the internal dynamics spec.
func (d *DynamicsConfig) spec() dynamics.Spec {
	spec := dynamics.Spec{EpochLen: d.EpochLen}
	if d.ChurnJoinFraction > 0 || d.ChurnLeaveFraction > 0 {
		spec.Churn = &dynamics.Churn{
			JoinFraction:  d.ChurnJoinFraction,
			JoinWindow:    d.ChurnJoinWindow,
			LeaveFraction: d.ChurnLeaveFraction,
			LeaveWindow:   d.ChurnLeaveWindow,
		}
	}
	if d.MobilitySpeed > 0 {
		spec.Mobility = &dynamics.Mobility{
			Speed:  d.MobilitySpeed,
			Radius: d.MobilityRadius,
			Pause:  d.MobilityPause,
		}
	}
	if d.PrimaryEvents > 0 {
		spec.Primary = &dynamics.Primary{
			Events:   d.PrimaryEvents,
			Duration: d.PrimaryDuration,
			Radius:   d.PrimaryRadius,
		}
	}
	return spec
}

// Discovery is one entry of a node's neighbor table.
type Discovery struct {
	// Neighbor is the discovered neighbor's node ID.
	Neighbor int `json:"neighbor"`
	// CommonChannels is A(v) ∩ A(u) as reported by the protocol.
	CommonChannels []int `json:"commonChannels"`
}

// Report is the outcome of a discovery run.
type Report struct {
	// Algorithm echoes the run configuration.
	Algorithm Algorithm `json:"algorithm"`
	// Complete is true when every discoverable link was covered within the
	// horizon.
	Complete bool `json:"complete"`
	// Slots is the synchronous completion slot count (valid when Complete
	// and the algorithm is synchronous).
	Slots int `json:"slots,omitempty"`
	// Duration is the asynchronous real completion time since T_s (valid
	// when Complete and the algorithm is AlgorithmAsync).
	Duration float64 `json:"duration,omitempty"`
	// Bound is the paper's analytic bound in the same unit as Slots or
	// Duration: the Theorem 1/2/3 slot bound, or the Theorem 10 real-time
	// bound for AlgorithmAsync.
	Bound float64 `json:"bound"`
	// LinksCovered / LinksTotal report discovery progress.
	LinksCovered int `json:"linksCovered"`
	LinksTotal   int `json:"linksTotal"`
	// MeanDutyCycle is the mean fraction of simulated slots with the radio
	// on, over all nodes (synchronous runs only; 0 for asynchronous runs).
	// Without termination the paper's protocols never idle, so this is 1.0
	// up to start-stagger effects; with TerminateAfterIdle it is the energy
	// saving headline.
	MeanDutyCycle float64 `json:"meanDutyCycle,omitempty"`
	// TerminatedNodes counts nodes that went quiet under the
	// TerminateAfterIdle rule (0 when the rule is off).
	TerminatedNodes int `json:"terminatedNodes,omitempty"`
	// MeanActiveUnits is the mean per-node count of radio-on slots
	// (synchronous) or frames (asynchronous) when TerminateAfterIdle is
	// active — the energy proxy.
	MeanActiveUnits float64 `json:"meanActiveUnits,omitempty"`
	// Epochs is the dynamic world's scheduled horizon in epochs (0 for
	// static runs).
	Epochs int `json:"epochs,omitempty"`
	// MeanDiscoveryLatency is the mean per-link discovery latency of a
	// dynamic run — coverage time minus the covered link's birth time, in
	// the engine's time unit — over all covered links. 0 for static runs
	// (where completion time is the headline) and when nothing was covered.
	MeanDiscoveryLatency float64 `json:"meanDiscoveryLatency,omitempty"`
	// Tables holds each node's discovered neighbors, indexed by node ID.
	Tables [][]Discovery `json:"tables"`
	// Curve is the discovery progress curve: cumulative covered-link count
	// at each first-coverage instant (slot index for synchronous runs,
	// real time for asynchronous runs), sorted by time.
	Curve []ProgressPoint `json:"curve"`
}

// ProgressPoint is one step of a discovery progress curve.
type ProgressPoint struct {
	// Time is the coverage instant (slots or real time).
	Time float64 `json:"time"`
	// Covered is the cumulative number of covered links at Time.
	Covered int `json:"covered"`
}

// Run executes a discovery run on the network.
func Run(n *Network, cfg RunConfig) (*Report, error) {
	return runWithScratch(n, cfg, nil)
}

// runWithScratch is Run with an optional per-worker engine scratch (nil
// means the engines allocate private state). RunTrials threads the harness
// pool's scratch through here so consecutive trials on one worker reuse
// engine buffers.
func runWithScratch(n *Network, cfg RunConfig, scratch *harness.Scratch) (*Report, error) {
	if n == nil {
		return nil, fmt.Errorf("m2hew: nil network")
	}
	cfg, sc, err := runDefaults(n, cfg)
	if err != nil {
		return nil, err
	}
	switch cfg.Algorithm {
	case AlgorithmSyncStaged, AlgorithmSyncGrowing, AlgorithmSyncUniform,
		AlgorithmBaselineUniversal, AlgorithmBaselineRoundRobin:
		return runSync(n, cfg, sc, scratch)
	case AlgorithmAsync:
		return runAsync(n, cfg, sc, scratch)
	default:
		return nil, fmt.Errorf("m2hew: unknown algorithm %q", cfg.Algorithm)
	}
}

// RunTrials executes trials independent discovery runs of the same
// configuration on the harness pool and returns their reports in trial
// order. Trial t runs with a seed derived deterministically from cfg.Seed,
// so the result is a pure function of (network, cfg, trials) regardless of
// scheduling; trial 0 uses cfg.Seed itself, making RunTrials(n, cfg, 1)
// report exactly what Run(n, cfg) does. A non-nil TraceWriter is rejected:
// concurrent trials would interleave their traces (trace single runs via
// Run instead).
func RunTrials(n *Network, cfg RunConfig, trials int) ([]*Report, error) {
	if n == nil {
		return nil, fmt.Errorf("m2hew: nil network")
	}
	if trials < 1 {
		return nil, fmt.Errorf("m2hew: trials %d < 1", trials)
	}
	if cfg.TraceWriter != nil {
		return nil, fmt.Errorf("m2hew: RunTrials does not support TraceWriter; trace individual runs with Run")
	}
	if cfg.EventWriter != nil {
		return nil, fmt.Errorf("m2hew: RunTrials does not support EventWriter; concurrent trials would interleave their event logs")
	}
	if cfg.Observer != nil {
		return nil, fmt.Errorf("m2hew: RunTrials does not support Observer; concurrent trials would share it (use the harness instrument seam instead)")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	// Per-trial seeds come from a dedicated stream (splitmix via rng) drawn
	// sequentially before the pool starts, so every trial is reproducible in
	// isolation by passing its seed to Run.
	seeds := make([]uint64, trials)
	seeds[0] = cfg.Seed
	seedSrc := rng.New(cfg.Seed)
	for t := 1; t < trials; t++ {
		seeds[t] = seedSrc.Uint64()
	}
	reports := make([]*Report, trials)
	err := harness.RunScratch(trials, func(t int, sc *harness.Scratch) error {
		trialCfg := cfg
		trialCfg.Seed = seeds[t]
		rep, err := runWithScratch(n, trialCfg, sc)
		if err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
		reports[t] = rep
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("m2hew: %w", err)
	}
	return reports, nil
}

func runDefaults(n *Network, cfg RunConfig) (RunConfig, analytic.Scenario, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.1
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: epsilon %v outside (0,1)", cfg.Epsilon)
	}
	if cfg.FrameLen == 0 {
		cfg.FrameLen = 3
	}
	if cfg.FrameLen < 0 {
		return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: negative frame length %v", cfg.FrameLen)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.StartWindow < 0 || cfg.StartSpread < 0 {
		return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: negative start stagger")
	}
	if cfg.DriftBound < 0 || cfg.DriftBound >= 1 {
		return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: drift bound %v outside [0,1)", cfg.DriftBound)
	}
	if cfg.StartWindow > 0 && cfg.Algorithm != AlgorithmSyncUniform {
		return cfg, analytic.Scenario{}, fmt.Errorf(
			"m2hew: %q assumes identical start times; use %q for staggered starts",
			cfg.Algorithm, AlgorithmSyncUniform)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: loss probability %v outside [0,1)", cfg.LossProb)
	}
	if cfg.TerminateAfterIdle < 0 {
		return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: negative idle limit %d", cfg.TerminateAfterIdle)
	}
	if d := cfg.Dynamics; d != nil {
		if d.EpochLen <= 0 {
			return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: dynamics epoch length %v must be positive", d.EpochLen)
		}
		if cfg.StartWindow > 0 {
			return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: dynamics and start windows are incompatible; churn schedules subsume staggered starts")
		}
		if cfg.Algorithm != AlgorithmAsync && d.EpochLen != math.Trunc(d.EpochLen) {
			return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: synchronous dynamics need a whole number of slots per epoch, got %v", d.EpochLen)
		}
	}
	p := n.params
	delta := p.Delta
	if delta < 1 {
		delta = 1 // edgeless networks: trivially complete
	}
	if cfg.DeltaEst == 0 {
		cfg.DeltaEst = nextPow2(delta)
	}
	if cfg.DeltaEst < delta {
		return cfg, analytic.Scenario{}, fmt.Errorf(
			"m2hew: degree estimate %d below true max degree %d; the paper's bounds need an upper bound",
			cfg.DeltaEst, delta)
	}
	sc := analytic.Scenario{
		N: p.N, S: p.S, Delta: delta, DeltaEst: cfg.DeltaEst,
		Rho: p.Rho, Eps: cfg.Epsilon,
	}
	if p.N < 2 {
		// Single-node networks have nothing to discover; synthesize a
		// trivially valid scenario for the bound fields.
		sc.N = 2
	}
	if sc.S < 1 {
		sc.S = 1
	}
	if err := sc.Validate(); err != nil {
		return cfg, analytic.Scenario{}, fmt.Errorf("m2hew: %w", err)
	}
	return cfg, sc, nil
}

func runSync(n *Network, cfg RunConfig, sc analytic.Scenario, scratch *harness.Scratch) (*Report, error) {
	universeSize := cfg.UniverseSize
	if universeSize == 0 {
		if maxC, ok := n.inner.Universe().Max(); ok {
			universeSize = int(maxC) + 1
		} else {
			universeSize = 1
		}
	}
	var bound float64
	switch cfg.Algorithm {
	case AlgorithmSyncStaged:
		bound = sc.Theorem1Slots()
	case AlgorithmSyncGrowing:
		bound = sc.Theorem2Slots()
	case AlgorithmSyncUniform:
		bound = sc.Theorem3Slots()
	case AlgorithmBaselineRoundRobin:
		// The deterministic schedule provably finishes in exactly one cycle.
		bound = float64(n.N() * universeSize)
	default: // AlgorithmBaselineUniversal
		// No bound from the paper: U interleaved single-channel instances;
		// size the default horizon as U × the Theorem 1 slot bound.
		bound = 0
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		switch cfg.Algorithm {
		case AlgorithmBaselineUniversal:
			maxSlots = universeSize * (int(sc.Theorem1Slots()) + 1)
		default:
			maxSlots = cfg.StartWindow + int(bound) + 1
		}
		if cfg.LossProb > 0 {
			// Erasures thin deliveries by ~(1−p); widen the horizon so the
			// run can still complete within it.
			maxSlots = int(float64(maxSlots) / (1 - cfg.LossProb))
		}
		if cfg.TerminateAfterIdle > 0 {
			// Leave room for the quiescence cascade after the last
			// discovery.
			maxSlots += 6 * cfg.TerminateAfterIdle
		}
	}
	root := rng.New(cfg.Seed)
	var loss *sim.LossModel
	if cfg.LossProb > 0 {
		var err error
		loss, err = sim.NewLossModel(cfg.LossProb, root.Split())
		if err != nil {
			return nil, fmt.Errorf("m2hew: %w", err)
		}
	}
	protos := make([]sim.SyncProtocol, n.N())
	var (
		hold             []interface{ Neighbors() *core.NeighborTable }
		syncTermWrappers []*core.SyncTerminating
	)
	for u := 0; u < n.N(); u++ {
		avail := n.inner.Avail(topology.NodeID(u))
		var (
			p   sim.SyncProtocol
			t   interface{ Neighbors() *core.NeighborTable }
			err error
		)
		switch cfg.Algorithm {
		case AlgorithmSyncStaged:
			sp, e := core.NewSyncStaged(avail, cfg.DeltaEst, root.Split())
			p, t, err = sp, sp, e
		case AlgorithmSyncGrowing:
			sp, e := core.NewSyncGrowing(avail, root.Split())
			p, t, err = sp, sp, e
		case AlgorithmBaselineUniversal:
			sp, e := baseline.NewUniversalBirthday(avail, universeSize, cfg.DeltaEst, root.Split())
			p, t, err = sp, sp, e
		case AlgorithmBaselineRoundRobin:
			sp, e := baseline.NewDeterministicRoundRobin(topology.NodeID(u), avail, universeSize, n.N())
			p, t, err = sp, sp, e
		default:
			sp, e := core.NewSyncUniform(avail, cfg.DeltaEst, root.Split())
			p, t, err = sp, sp, e
		}
		if err != nil {
			return nil, fmt.Errorf("m2hew: node %d: %w", u, err)
		}
		if cfg.TerminateAfterIdle > 0 {
			disc, ok := p.(core.SyncDiscoverer)
			if !ok {
				return nil, fmt.Errorf("m2hew: %q cannot be wrapped for termination", cfg.Algorithm)
			}
			wrapped, err := core.NewSyncTerminating(disc, cfg.TerminateAfterIdle)
			if err != nil {
				return nil, fmt.Errorf("m2hew: node %d: %w", u, err)
			}
			p, t = wrapped, wrapped
			syncTermWrappers = append(syncTermWrappers, wrapped)
		}
		protos[u] = p
		hold = append(hold, t)
	}
	var starts []int
	if cfg.StartWindow > 0 {
		starts = make([]int, n.N())
		for u := range starts {
			starts[u] = root.IntN(cfg.StartWindow)
		}
	}
	// The world draws after every static stream (loss, protocols, starts),
	// so a run with Dynamics == nil consumes exactly the splits it always
	// did.
	var world *dynamics.World
	if cfg.Dynamics != nil {
		epochSlots := int(cfg.Dynamics.EpochLen)
		epochs := (maxSlots + epochSlots - 1) / epochSlots
		if epochs < 1 {
			epochs = 1
		}
		var err error
		world, err = dynamics.NewWorld(n.inner, cfg.Dynamics.spec(), epochs, root.Split())
		if err != nil {
			return nil, fmt.Errorf("m2hew: %w", err)
		}
	}
	traceObs, finishTrace := runObservers(cfg)
	meter, err := metrics.NewEnergyMeter(n.N())
	if err != nil {
		return nil, fmt.Errorf("m2hew: %w", err)
	}
	syncCfg := sim.SyncConfig{
		Network:    n.inner,
		Protocols:  protos,
		StartSlots: starts,
		MaxSlots:   maxSlots,
		// With termination active the interesting behaviour continues past
		// oracle completion (nodes must notice quiescence), so run out the
		// horizon.
		RunToMaxSlots: cfg.TerminateAfterIdle > 0,
		Loss:          loss,
		Observer:      sim.MultiObserver(traceObs, sim.EnergyObserver(meter)),
		Dynamics:      world,
	}
	if scratch != nil {
		syncCfg.Scratch = scratch.Sync()
	}
	res, err := sim.RunSync(syncCfg)
	if err != nil {
		return nil, fmt.Errorf("m2hew: %w", err)
	}
	if err := finishTrace(); err != nil {
		return nil, fmt.Errorf("m2hew: %w", err)
	}
	report := &Report{
		Algorithm:    cfg.Algorithm,
		Complete:     res.Complete,
		Bound:        bound,
		LinksCovered: res.Coverage.TargetSize() - res.Coverage.Remaining(),
		LinksTotal:   res.Coverage.TargetSize(),
		Tables:       tablesOf(n, hold),
		Curve:        curveOf(res.Coverage),
	}
	if res.Complete {
		report.Slots = res.CompletionSlot + 1
	}
	if world != nil {
		report.Epochs = world.Horizon()
		if lat := res.Coverage.Latencies(); len(lat) > 0 {
			report.MeanDiscoveryLatency = metrics.Summarize(lat).Mean
		}
	}
	report.MeanDutyCycle = meter.MeanDutyCycle()
	for _, w := range syncTermWrappers {
		if w.Terminated() {
			report.TerminatedNodes++
		}
		report.MeanActiveUnits += float64(w.ActiveSlots())
	}
	if len(syncTermWrappers) > 0 {
		report.MeanActiveUnits /= float64(len(syncTermWrappers))
	}
	return report, nil
}

func runAsync(n *Network, cfg RunConfig, sc analytic.Scenario, scratch *harness.Scratch) (*Report, error) {
	bound := sc.Theorem10Span(cfg.FrameLen, cfg.DriftBound)
	maxFrames := cfg.MaxFrames
	if maxFrames == 0 {
		maxFrames = int(math.Ceil(sc.Theorem9Frames())) + int(cfg.StartSpread/cfg.FrameLen) + 2
		if cfg.LossProb > 0 {
			// Erasures thin deliveries by ~(1−p); widen the horizon to
			// match (as the synchronous path does).
			maxFrames = int(float64(maxFrames) / (1 - cfg.LossProb))
		}
		// Cap the horizon: the bound is very conservative and generating
		// its full frame count is wasteful; an incomplete run reports
		// Complete=false either way.
		if maxFrames > 20000 {
			maxFrames = 20000
		}
	}
	if cfg.TerminateAfterIdle > 0 {
		maxFrames += 2 * cfg.TerminateAfterIdle
	}
	root := rng.New(cfg.Seed)
	var loss *sim.LossModel
	if cfg.LossProb > 0 {
		var err error
		loss, err = sim.NewLossModel(cfg.LossProb, root.Split())
		if err != nil {
			return nil, fmt.Errorf("m2hew: %w", err)
		}
	}
	nodes := make([]sim.AsyncNode, n.N())
	var (
		hold              []interface{ Neighbors() *core.NeighborTable }
		asyncTermWrappers []*core.AsyncTerminating
	)
	for u := 0; u < n.N(); u++ {
		p, err := core.NewAsync(n.inner.Avail(topology.NodeID(u)), cfg.DeltaEst, root.Split())
		if err != nil {
			return nil, fmt.Errorf("m2hew: node %d: %w", u, err)
		}
		var proto sim.AsyncProtocol = p
		var table interface{ Neighbors() *core.NeighborTable } = p
		if cfg.TerminateAfterIdle > 0 {
			wrapped, err := core.NewAsyncTerminating(p, cfg.TerminateAfterIdle)
			if err != nil {
				return nil, fmt.Errorf("m2hew: node %d: %w", u, err)
			}
			proto, table = wrapped, wrapped
			asyncTermWrappers = append(asyncTermWrappers, wrapped)
		}
		var drift clock.DriftProcess = clock.Ideal
		if cfg.DriftBound > 0 {
			drift, err = clock.NewRandomWalk(cfg.DriftBound, cfg.DriftBound/4+0.001, root.Split())
			if err != nil {
				return nil, fmt.Errorf("m2hew: node %d drift: %w", u, err)
			}
		}
		start := 0.0
		if cfg.StartSpread > 0 {
			start = root.Float64() * cfg.StartSpread
		}
		nodes[u] = sim.AsyncNode{Protocol: proto, Start: start, Drift: drift}
		hold = append(hold, table)
	}
	// The world draws after every static stream (loss, protocols, drifts,
	// starts), so a run with Dynamics == nil consumes exactly the splits it
	// always did.
	var world *dynamics.World
	if cfg.Dynamics != nil {
		// Size the epoch horizon to the run's nominal real-time span; drifted
		// clocks may overrun it slightly, where EpochOf clamps to the final
		// epoch (whose state persists).
		span := cfg.StartSpread + float64(maxFrames)*cfg.FrameLen*(1+cfg.DriftBound)
		epochs := int(span/cfg.Dynamics.EpochLen) + 1
		var err error
		world, err = dynamics.NewWorld(n.inner, cfg.Dynamics.spec(), epochs, root.Split())
		if err != nil {
			return nil, fmt.Errorf("m2hew: %w", err)
		}
	}
	traceObs, finishTrace := runObservers(cfg)
	simCfg := sim.AsyncConfig{
		Network:   n.inner,
		Nodes:     nodes,
		FrameLen:  cfg.FrameLen,
		MaxFrames: maxFrames,
		Loss:      loss,
		Observer:  traceObs,
		Dynamics:  world,
	}
	if scratch != nil {
		// The Report never reads result Timelines, so this path can also
		// pool the timeline objects across a worker's trials.
		asc := scratch.Async()
		asc.RecycleTimelines = true
		simCfg.Scratch = asc
	}
	var (
		res *sim.AsyncResult
		err error
	)
	if cfg.TerminateAfterIdle > 0 {
		// The termination wrapper is adaptive (its schedule depends on what
		// it received), which requires the online engine.
		res, err = sim.RunAsyncOnline(simCfg)
	} else {
		res, err = sim.RunAsync(simCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("m2hew: %w", err)
	}
	if err := finishTrace(); err != nil {
		return nil, fmt.Errorf("m2hew: %w", err)
	}
	report := &Report{
		Algorithm:    cfg.Algorithm,
		Complete:     res.Complete,
		Bound:        bound,
		LinksCovered: res.Coverage.TargetSize() - res.Coverage.Remaining(),
		LinksTotal:   res.Coverage.TargetSize(),
		Tables:       tablesOf(n, hold),
		Curve:        curveOf(res.Coverage),
	}
	if res.Complete {
		report.Duration = res.CompletionTime - res.Ts
	}
	if world != nil {
		report.Epochs = world.Horizon()
		if lat := res.Coverage.Latencies(); len(lat) > 0 {
			report.MeanDiscoveryLatency = metrics.Summarize(lat).Mean
		}
	}
	for _, w := range asyncTermWrappers {
		if w.Terminated() {
			report.TerminatedNodes++
		}
		report.MeanActiveUnits += float64(w.ActiveFrames())
	}
	if len(asyncTermWrappers) > 0 {
		report.MeanActiveUnits /= float64(len(asyncTermWrappers))
	}
	return report, nil
}

func tablesOf(n *Network, hold []interface{ Neighbors() *core.NeighborTable }) [][]Discovery {
	tables := make([][]Discovery, len(hold))
	for u, h := range hold {
		tbl := h.Neighbors()
		entries := make([]Discovery, 0, tbl.Len())
		for _, v := range tbl.Neighbors() {
			common, _ := tbl.Common(v)
			entries = append(entries, Discovery{
				Neighbor:       int(v),
				CommonChannels: setToInts(common),
			})
		}
		tables[u] = entries
	}
	_ = n
	return tables
}

// runObservers builds the optional trace observers of one run — the
// human-readable reception trace (TraceWriter) and the full NDJSON event
// log (EventWriter) — plus a finish function surfacing the writers' sticky
// errors once the run is over.
func runObservers(cfg RunConfig) (sim.Observer, func() error) {
	var (
		obs      sim.Observer
		finalize []func() error
	)
	if cfg.TraceWriter != nil {
		w := trace.NewWriter(cfg.TraceWriter)
		obs = sim.MultiObserver(obs, sim.TraceObserver(w))
		finalize = append(finalize, w.Err)
	}
	if cfg.EventWriter != nil {
		jw := trace.NewJSONWriter(cfg.EventWriter)
		obs = sim.MultiObserver(obs, sim.EventTraceObserver(jw))
		finalize = append(finalize, jw.Err)
	}
	if cfg.Observer != nil {
		obs = sim.MultiObserver(obs, cfg.Observer)
	}
	return obs, func() error {
		for _, f := range finalize {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	}
}

// nextPow2 returns the smallest power of two ≥ x (and ≥ 2).
func nextPow2(x int) int {
	p := 2
	for p < x {
		p *= 2
	}
	return p
}

// curveOf converts the oracle's coverage curve to the public shape.
func curveOf(cov *metrics.Coverage) []ProgressPoint {
	points := cov.Curve()
	out := make([]ProgressPoint, len(points))
	for i, p := range points {
		out[i] = ProgressPoint{Time: p.Time, Covered: p.Covered}
	}
	return out
}
