package m2hew

import (
	"testing"
)

// TestSoakLargeNetwork drives a larger end-to-end scenario than the unit
// tests: an 80-node cognitive-radio network discovered by each synchronous
// algorithm and a 40-node one by the asynchronous algorithm, with full
// table verification. Skipped under -short.
func TestSoakLargeNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	nw, err := BuildNetwork(NetworkConfig{
		Nodes:            80,
		Topology:         TopologyGeometric,
		Radius:           0.25,
		RequireConnected: true,
		Universe:         12,
		Channels:         ChannelsPrimaryUsers,
		Primaries:        18,
		Seed:             2026,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.Nodes != 80 || s.DiscoverableLinks == 0 {
		t.Fatalf("unexpected network: %+v", s)
	}
	for _, alg := range []Algorithm{AlgorithmSyncStaged, AlgorithmSyncUniform} {
		report, err := Run(nw, RunConfig{Algorithm: alg, Seed: 404})
		if err != nil {
			t.Fatal(err)
		}
		if !report.Complete {
			t.Fatalf("%s incomplete on 80 nodes: %d/%d", alg, report.LinksCovered, report.LinksTotal)
		}
		if float64(report.Slots) > report.Bound {
			t.Fatalf("%s exceeded its bound: %d > %v", alg, report.Slots, report.Bound)
		}
		verifyTables(t, nw, report)
	}

	asyncNW, err := BuildNetwork(NetworkConfig{
		Nodes:            40,
		Topology:         TopologyGeometric,
		Radius:           0.32,
		RequireConnected: true,
		Universe:         8,
		Channels:         ChannelsPrimaryUsers,
		Primaries:        12,
		Seed:             2027,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(asyncNW, RunConfig{
		Algorithm:   AlgorithmAsync,
		DriftBound:  1.0 / 7,
		StartSpread: 60,
		Seed:        405,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Complete {
		t.Fatalf("async incomplete on 40 nodes: %d/%d", report.LinksCovered, report.LinksTotal)
	}
	verifyTables(t, asyncNW, report)
}

// TestSoakScale300 pushes the synchronous path to 300 nodes — the regime
// the grid-bucket generator, dense neighbor tables, and trial-scoped
// scratch reuse target. Three trials run through RunTrials so the
// per-worker scratch seam is exercised across consecutive runs, with full
// table verification on each report. Skipped under -short.
func TestSoakScale300(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	nw, err := BuildNetwork(NetworkConfig{
		Nodes:            300,
		Topology:         TopologyGeometric,
		Radius:           0.11,
		RequireConnected: true,
		Universe:         12,
		Channels:         ChannelsPrimaryUsers,
		Primaries:        18,
		Seed:             2028,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.Nodes != 300 || s.DiscoverableLinks == 0 {
		t.Fatalf("unexpected network: %+v", s)
	}
	reports, err := RunTrials(nw, RunConfig{Algorithm: AlgorithmSyncUniform, Seed: 406}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, report := range reports {
		if !report.Complete {
			t.Fatalf("trial %d incomplete on 300 nodes: %d/%d", i, report.LinksCovered, report.LinksTotal)
		}
		if float64(report.Slots) > report.Bound {
			t.Fatalf("trial %d exceeded its bound: %d > %v", i, report.Slots, report.Bound)
		}
		verifyTables(t, nw, report)
	}
}

// verifyTables checks every node's discovered table exactly matches the
// ground truth graph and spans.
func verifyTables(t *testing.T, nw *Network, report *Report) {
	t.Helper()
	for u := 0; u < nw.N(); u++ {
		want := nw.NeighborIDs(u)
		got := report.Tables[u]
		if len(got) != len(want) {
			t.Fatalf("node %d discovered %d neighbors, want %d", u, len(got), len(want))
		}
		for i, d := range got {
			if d.Neighbor != want[i] {
				t.Fatalf("node %d neighbor list mismatch", u)
			}
			span := nw.CommonChannels(u, d.Neighbor)
			if len(span) != len(d.CommonChannels) {
				t.Fatalf("node %d neighbor %d span mismatch: %v vs %v",
					u, d.Neighbor, d.CommonChannels, span)
			}
			for j := range span {
				if span[j] != d.CommonChannels[j] {
					t.Fatalf("node %d neighbor %d channel mismatch", u, d.Neighbor)
				}
			}
		}
	}
}
